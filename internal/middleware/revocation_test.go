package middleware

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/transport"
)

// pullRevoker hides a CA's push hook, modelling an out-of-process CA the
// gateway can only poll: deltas reach it via sweeps and revocation.notify,
// never via subscription.
type pullRevoker struct{ ca *pki.CA }

func (p pullRevoker) RevocationVersion() uint64 { return p.ca.RevocationVersion() }

func (p pullRevoker) RevokedSince(epoch uint64) ([]pki.Revocation, uint64) {
	return p.ca.RevokedSince(epoch)
}

func (p pullRevoker) IsRevoked(serial uint64) bool { return p.ca.IsRevoked(serial) }

// revocableManager builds a manager with revocation checks over a fresh
// CA-backed consortium.
func revocableManager(t *testing.T, clock *fakeClock, mode RevokeCheckMode, sweepEvery time.Duration, names ...string) (*pki.CA, map[string]*principal, *SessionManager) {
	t.Helper()
	ca, ps := enrollAt(t, clock.now, names...)
	mgr, err := NewSessionManager(ca.PublicKey(), 10*time.Minute, 2*time.Minute, clock.now,
		WithRevocationChecks(pullRevoker{ca}, mode, sweepEvery))
	if err != nil {
		t.Fatalf("NewSessionManager: %v", err)
	}
	return ca, ps, mgr
}

func TestRevocationResolveModeEvictsMidSession(t *testing.T) {
	clock := newFakeClock()
	ca, ps, mgr := revocableManager(t, clock, RevokeCheckResolve, 0, "alice", "bob")
	stage, err := NewSession(mgr)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain((&accept{}).handler, stage)
	submit := func(p *principal, token string) error {
		return chain.Execute(context.Background(), sessionRequest(t, p, token, "deals", []byte("x")))
	}

	alice := openSession(t, mgr, ps["alice"])
	bob := openSession(t, mgr, ps["bob"])
	if err := submit(ps["alice"], alice.Token); err != nil {
		t.Fatalf("pre-revocation submit: %v", err)
	}

	// Revocation is observed on the very next resolve: no sweep, no
	// notification, just the version probe.
	ca.Revoke(ps["alice"].cert.Serial)
	if err := submit(ps["alice"], alice.Token); !errors.Is(err, ErrSessionRevoked) {
		t.Fatalf("post-revocation submit = %v, want ErrSessionRevoked", err)
	}
	// The error is stable across retries, not a one-shot.
	if err := submit(ps["alice"], alice.Token); !errors.Is(err, ErrSessionRevoked) {
		t.Fatalf("second post-revocation submit = %v, want ErrSessionRevoked", err)
	}
	// An unrevoked principal is untouched.
	if err := submit(ps["bob"], bob.Token); err != nil {
		t.Fatalf("unrevoked principal submit: %v", err)
	}
	stats := mgr.Stats()
	if stats.Revoked != 1 || stats.Live != 1 {
		t.Fatalf("stats = %+v, want 1 revoked / 1 live", stats)
	}
	if stats.Expired != 0 || stats.Evicted != 0 {
		t.Fatalf("revocation leaked into other counters: %+v", stats)
	}

	// A revoked certificate cannot root a fresh session either.
	hello, err := NewSessionHelloAt("alice", ps["alice"].cert, ps["alice"].key, clock.now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Open(hello); !errors.Is(err, ErrSessionRevoked) {
		t.Fatalf("open with revoked cert = %v, want ErrSessionRevoked", err)
	}

	// Once the session's original expiry passes, the tombstone decays to
	// an ordinary unknown token.
	clock.advance(11 * time.Minute)
	if err := submit(ps["alice"], alice.Token); !errors.Is(err, ErrNoSession) {
		t.Fatalf("decayed tombstone = %v, want ErrNoSession", err)
	}
}

func TestRevocationSweepModeInterval(t *testing.T) {
	clock := newFakeClock()
	ca, ps, mgr := revocableManager(t, clock, RevokeCheckSweep, time.Minute, "alice")
	stage, err := NewSession(mgr)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain((&accept{}).handler, stage)
	submit := func(token string) error {
		return chain.Execute(context.Background(), sessionRequest(t, ps["alice"], token, "deals", []byte("x")))
	}

	grant := openSession(t, mgr, ps["alice"])
	ca.Revoke(ps["alice"].cert.Serial)

	// Inside the sweep interval the resolve path does not consult the
	// revoker: the documented staleness window of sweep mode.
	if err := submit(grant.Token); err != nil {
		t.Fatalf("submit inside sweep window: %v", err)
	}
	// Once the interval elapses, the next resolve applies the delta.
	clock.advance(time.Minute)
	if err := submit(grant.Token); !errors.Is(err, ErrSessionRevoked) {
		t.Fatalf("submit after sweep interval = %v, want ErrSessionRevoked", err)
	}
	if got := mgr.Stats().Revoked; got != 1 {
		t.Fatalf("revoked counter = %d, want 1", got)
	}
}

func TestRevocationSweepModeNotified(t *testing.T) {
	clock := newFakeClock()
	ca, ps, mgr := revocableManager(t, clock, RevokeCheckSweep, time.Hour, "alice")
	stage, err := NewSession(mgr)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain((&accept{}).handler, stage)

	grant := openSession(t, mgr, ps["alice"])
	ca.Revoke(ps["alice"].cert.Serial)
	// The push path: a notified sweep applies the delta immediately, hours
	// before the interval would.
	if n := mgr.SweepRevoked(); n != 1 {
		t.Fatalf("SweepRevoked = %d, want 1", n)
	}
	err = chain.Execute(context.Background(), sessionRequest(t, ps["alice"], grant.Token, "deals", []byte("x")))
	if !errors.Is(err, ErrSessionRevoked) {
		t.Fatalf("submit after notified sweep = %v, want ErrSessionRevoked", err)
	}
}

func TestRevocationOffModeIgnoresRevoker(t *testing.T) {
	clock := newFakeClock()
	ca, ps := enrollAt(t, clock.now, "alice")
	mgr := mustManager(t, ca, 10*time.Minute, 2*time.Minute, clock.now)
	stage, err := NewSession(mgr)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain((&accept{}).handler, stage)

	grant := openSession(t, mgr, ps["alice"])
	ca.Revoke(ps["alice"].cert.Serial)
	// Pre-revocation-plane behavior: the session outlives the revocation
	// until TTL/idle expiry. This is what revokecheck=off buys (nothing).
	err = chain.Execute(context.Background(), sessionRequest(t, ps["alice"], grant.Token, "deals", []byte("x")))
	if err != nil {
		t.Fatalf("off-mode submit after revocation: %v", err)
	}
	if mgr.SweepRevoked() != 0 {
		t.Fatal("off-mode manager must sweep trivially")
	}
}

// TestRevocationNewerCertSurvivesOldSerialRevocation pins the serial-exact
// eviction semantics: revoking a principal's superseded certificate must
// not kill sessions rooted in its replacement.
func TestRevocationNewerCertSurvivesOldSerialRevocation(t *testing.T) {
	clock := newFakeClock()
	ca, ps, mgr := revocableManager(t, clock, RevokeCheckResolve, 0, "alice")
	oldCert := ps["alice"].cert
	renewed, err := ca.Enroll("alice", ps["alice"].key.Public())
	if err != nil {
		t.Fatalf("re-enroll: %v", err)
	}
	ps["alice"].cert = renewed
	grant := openSession(t, mgr, ps["alice"])

	ca.Revoke(oldCert.Serial)
	stage, err := NewSession(mgr)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain((&accept{}).handler, stage)
	err = chain.Execute(context.Background(), sessionRequest(t, ps["alice"], grant.Token, "deals", []byte("x")))
	if err != nil {
		t.Fatalf("session under renewed cert evicted by old serial: %v", err)
	}
	if got := mgr.Stats().Revoked; got != 0 {
		t.Fatalf("revoked counter = %d, want 0", got)
	}
}

// revocableGatewayConfig is the full revocation-aware pipeline the e2e
// tests drive over transport.
func revocableGatewayConfig(mode string) Config {
	params := map[string]string{"ttl": "10m", "idle": "5m", "revokecheck": mode}
	if mode == "sweep" {
		params["revokesweep"] = "1m"
	}
	return Config{Stages: []StageConfig{
		{Name: StageSession, Params: params},
		{Name: StageAuthn},
		{Name: StageEncrypt, Params: map[string]string{"keyttl": "5m"}},
		{Name: StageAudit, Params: map[string]string{"observer": "gateway-op"}},
	}}
}

// TestGatewayRevocationEndToEnd runs the whole plane over transport in
// both checking modes: a CA revocation pushes through the gateway into
// session eviction, key-epoch rotation, audit trail, and stats — and the
// revoked member cannot open post-revocation envelopes.
func TestGatewayRevocationEndToEnd(t *testing.T) {
	for _, mode := range []string{"resolve", "sweep"} {
		t.Run(mode, func(t *testing.T) {
			clock := newFakeClock()
			ca, ps := enrollAt(t, clock.now, "alice", "bob", "carol")
			memberKeys := map[string]dcrypto.PublicKey{
				"alice": ps["alice"].key.Public(),
				"bob":   ps["bob"].key.Public(),
				"carol": ps["carol"].key.Public(),
			}
			log := audit.NewLog()
			orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope, ordering.WithAuditLog(log))
			env := Env{
				CAKey:     ca.PublicKey(),
				Directory: StaticDirectory{"deals": memberKeys},
				Log:       log,
				Now:       clock.now,
				Revoker:   ca, // a RevocationSource: the gateway subscribes
			}
			gw, err := NewGateway("gw", revocableGatewayConfig(mode), env, orderer)
			if err != nil {
				t.Fatal(err)
			}
			vault := &payloadVault{}
			gw.Bind("deals", vault)
			net := transport.New()
			if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
				t.Fatal(err)
			}

			grants := make(map[string]SessionGrant)
			for _, name := range []string{"alice", "bob"} {
				grant, err := openSessionOverAt(t, net, "gateway", ps[name], clock.now())
				if err != nil {
					t.Fatalf("open session for %s: %v", name, err)
				}
				grants[name] = grant
			}

			// Pre-revocation: bob is a recipient of epoch-1 envelopes.
			req := sessionRequest(t, ps["alice"], grants["alice"].Token, "deals", []byte("pre-revocation"))
			if _, err := SubmitOver(net, "alice", "gateway", req); err != nil {
				t.Fatalf("pre-revocation submit: %v", err)
			}
			envl := vault.parse(t, 0)
			if envl.Epoch != 1 {
				t.Fatalf("pre-revocation epoch = %d, want 1", envl.Epoch)
			}
			if _, err := OpenEnvelope(envl, "bob", ps["bob"].key); err != nil {
				t.Fatalf("bob cannot open pre-revocation envelope: %v", err)
			}

			// Revoke bob mid-session. The CA pushes, the gateway syncs.
			ca.Revoke(ps["bob"].cert.Serial)

			// Bob's next request dies with the distinct revocation error in
			// both modes (the push subscription sweeps immediately; the
			// sweep interval is only the fallback).
			bobReq := sessionRequest(t, ps["bob"], grants["bob"].Token, "deals", []byte("x"))
			if _, err := SubmitOver(net, "bob", "gateway", bobReq); !errors.Is(err, ErrSessionRevoked) {
				t.Fatalf("revoked principal submit = %v, want ErrSessionRevoked", err)
			}
			// Bob cannot re-open a session with the revoked certificate.
			if _, err := openSessionOverAt(t, net, "gateway", ps["bob"], clock.now()); !errors.Is(err, ErrSessionRevoked) {
				t.Fatalf("revoked principal re-open = %v, want ErrSessionRevoked", err)
			}

			// Alice's next envelope rides a fresh epoch bob cannot unwrap.
			req = sessionRequest(t, ps["alice"], grants["alice"].Token, "deals", []byte("post-revocation"))
			if _, err := SubmitOver(net, "alice", "gateway", req); err != nil {
				t.Fatalf("post-revocation submit: %v", err)
			}
			envl = vault.parse(t, 1)
			if envl.Epoch != 2 {
				t.Fatalf("post-revocation epoch = %d, want 2", envl.Epoch)
			}
			if _, err := OpenEnvelope(envl, "bob", ps["bob"].key); !errors.Is(err, ErrNotRecipient) {
				t.Fatalf("revoked member opened post-revocation envelope: %v", err)
			}
			for _, name := range []string{"alice", "carol"} {
				got, err := OpenEnvelope(envl, name, ps[name].key)
				if err != nil || string(got) != "post-revocation" {
					t.Fatalf("surviving member %s read %q, %v", name, got, err)
				}
			}

			// Counters and audit trail agree with what happened.
			stats := gw.Stats()
			if stats.SessionsRevoked != 1 {
				t.Fatalf("SessionsRevoked = %d, want 1", stats.SessionsRevoked)
			}
			if stats.KeyEpochsRevokedRotations != 1 {
				t.Fatalf("KeyEpochsRevokedRotations = %d, want 1", stats.KeyEpochsRevokedRotations)
			}
			if stats.RevocationSweeps == 0 {
				t.Fatal("RevocationSweeps = 0, want at least the push sync")
			}
			if !log.Saw("gw", audit.ClassIdentity, fmt.Sprintf("revoked:bob#%d@1", ps["bob"].cert.Serial)) {
				t.Fatalf("audit log missing the revocation trail; saw %v",
					log.ItemsSeen("gw", audit.ClassIdentity))
			}
		})
	}
}

// TestGatewayRevocationNotifyTopic exercises the pull path: a gateway
// whose revoker cannot push learns about revocations from the admin topic.
func TestGatewayRevocationNotifyTopic(t *testing.T) {
	clock := newFakeClock()
	ca, ps := enrollAt(t, clock.now, "alice", "bob")
	memberKeys := map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
	}
	env := Env{
		CAKey:     ca.PublicKey(),
		Directory: StaticDirectory{"deals": memberKeys},
		Log:       audit.NewLog(),
		Now:       clock.now,
		Revoker:   pullRevoker{ca}, // no push hook: notify is the only channel
	}
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope)
	gw, err := NewGateway("gw", revocableGatewayConfig("sweep"), env, orderer)
	if err != nil {
		t.Fatal(err)
	}
	gw.Bind("deals", &countingBackend{})
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		t.Fatal(err)
	}

	grant, err := openSessionOverAt(t, net, "gateway", ps["bob"], clock.now())
	if err != nil {
		t.Fatal(err)
	}
	ca.Revoke(ps["bob"].cert.Serial)

	// Without push and inside the sweep interval, the gateway has not
	// noticed yet.
	req := sessionRequest(t, ps["bob"], grant.Token, "deals", []byte("x"))
	if _, err := SubmitOver(net, "bob", "gateway", req); err != nil {
		t.Fatalf("submit before notify: %v", err)
	}

	notice, err := NotifyRevocationOver(net, "ca-admin", "gateway")
	if err != nil {
		t.Fatalf("NotifyRevocationOver: %v", err)
	}
	if notice.SessionsRevoked != 1 || notice.Epoch != 1 {
		t.Fatalf("notice = %+v, want 1 session revoked at epoch 1", notice)
	}
	req = sessionRequest(t, ps["bob"], grant.Token, "deals", []byte("x"))
	if _, err := SubmitOver(net, "bob", "gateway", req); !errors.Is(err, ErrSessionRevoked) {
		t.Fatalf("submit after notify = %v, want ErrSessionRevoked", err)
	}
	// Idempotent: a second notification finds an empty delta.
	notice, err = NotifyRevocationOver(net, "ca-admin", "gateway")
	if err != nil {
		t.Fatal(err)
	}
	if notice.SessionsRevoked != 0 || notice.Epoch != 1 {
		t.Fatalf("second notice = %+v, want empty delta at epoch 1", notice)
	}
}

// TestRevocationUnderConcurrentSubmitters drives many session submitters
// while certificates are revoked mid-flight: every request either succeeds
// or fails with a revocation-family error, and afterwards the revoked
// principals are locked out while the survivors still work. Run under
// -race this also proves the sweep/resolve paths are data-race free.
func TestRevocationUnderConcurrentSubmitters(t *testing.T) {
	for _, mode := range []RevokeCheckMode{RevokeCheckResolve, RevokeCheckSweep} {
		t.Run(mode.String(), func(t *testing.T) {
			clock := newFakeClock()
			names := []string{"alice", "bob", "carol", "dave"}
			ca, ps, mgr := revocableManager(t, clock, mode, time.Hour, names...)
			stage, err := NewSession(mgr)
			if err != nil {
				t.Fatal(err)
			}
			chain := NewChain((&accept{}).handler, stage)

			grants := make(map[string]SessionGrant, len(names))
			for _, name := range names {
				grants[name] = openSession(t, mgr, ps[name])
			}

			const perWorker = 50
			var wg sync.WaitGroup
			errs := make(chan error, len(names)*perWorker)
			for _, name := range names {
				wg.Add(1)
				go func(p *principal, token string) {
					defer wg.Done()
					for i := 0; i < perWorker; i++ {
						req := sessionRequest(t, p, token, "deals", []byte{byte(i)})
						if err := chain.Execute(context.Background(), req); err != nil {
							errs <- err
						}
					}
				}(ps[name], grants[name].Token)
			}
			// Revoke two principals while the submitters run; in sweep mode
			// push the sweeps concurrently too.
			wg.Add(1)
			go func() {
				defer wg.Done()
				ca.Revoke(ps["alice"].cert.Serial)
				mgr.SweepRevoked()
				ca.Revoke(ps["carol"].cert.Serial)
				mgr.SweepRevoked()
			}()
			wg.Wait()
			close(errs)
			for err := range errs {
				if !errors.Is(err, ErrSessionRevoked) {
					t.Fatalf("concurrent submitter saw %v, want only ErrSessionRevoked failures", err)
				}
			}

			// Post-conditions: revoked out, survivors in, counters exact.
			for _, name := range []string{"alice", "carol"} {
				req := sessionRequest(t, ps[name], grants[name].Token, "deals", []byte("x"))
				if err := chain.Execute(context.Background(), req); !errors.Is(err, ErrSessionRevoked) {
					t.Fatalf("revoked %s = %v, want ErrSessionRevoked", name, err)
				}
			}
			for _, name := range []string{"bob", "dave"} {
				req := sessionRequest(t, ps[name], grants[name].Token, "deals", []byte("x"))
				if err := chain.Execute(context.Background(), req); err != nil {
					t.Fatalf("surviving %s rejected: %v", name, err)
				}
			}
			stats := mgr.Stats()
			if stats.Revoked != 2 || stats.Live != 2 {
				t.Fatalf("stats = %+v, want 2 revoked / 2 live", stats)
			}
		})
	}
}

// TestSessionCloseIdempotent is the regression test for the session.close
// gap: closing a token that was already evicted — by expiry, by a
// revocation sweep, or by a previous close — must succeed silently and
// must not skew any lifecycle counter.
func TestSessionCloseIdempotent(t *testing.T) {
	clock := newFakeClock()
	ca, ps, mgr := revocableManager(t, clock, RevokeCheckResolve, 0, "alice")
	stage, err := NewSession(mgr)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain((&accept{}).handler, stage)
	submit := func(token string) error {
		return chain.Execute(context.Background(), sessionRequest(t, ps["alice"], token, "deals", []byte("x")))
	}

	// Close of a token that never existed.
	mgr.Close("no-such-token")

	// Double close of a live session.
	g1 := openSession(t, mgr, ps["alice"])
	mgr.Close(g1.Token)
	mgr.Close(g1.Token)

	// Close after idle eviction: the expiry already counted, close adds
	// nothing.
	g2 := openSession(t, mgr, ps["alice"])
	clock.advance(3 * time.Minute)
	if err := submit(g2.Token); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("idle session = %v, want ErrSessionExpired", err)
	}
	mgr.Close(g2.Token)

	// Close after revocation eviction clears the tombstone: the token
	// degrades to an ordinary unknown one instead of answering
	// ErrSessionRevoked forever.
	g3 := openSession(t, mgr, ps["alice"])
	ca.Revoke(ps["alice"].cert.Serial)
	if err := submit(g3.Token); !errors.Is(err, ErrSessionRevoked) {
		t.Fatalf("revoked session = %v, want ErrSessionRevoked", err)
	}
	mgr.Close(g3.Token)
	if err := submit(g3.Token); !errors.Is(err, ErrNoSession) {
		t.Fatalf("closed tombstone = %v, want ErrNoSession", err)
	}

	stats := mgr.Stats()
	if stats.Live != 0 || stats.Opened != 3 || stats.Expired != 1 || stats.Evicted != 0 || stats.Revoked != 1 {
		t.Fatalf("counters skewed by closes: %+v", stats)
	}
}

// TestSessionCloseIdempotentOverTransport covers the wire form of the same
// gap: session.close for an evicted token replies ok, twice.
func TestSessionCloseIdempotentOverTransport(t *testing.T) {
	clock := newFakeClock()
	ca, ps := enrollAt(t, clock.now, "alice")
	env := Env{CAKey: ca.PublicKey(), Now: clock.now}
	orderer := ordering.New("op", ordering.VisibilityFull)
	gw, err := NewGateway("gw", Config{Stages: []StageConfig{
		{Name: StageSession, Params: map[string]string{"ttl": "10m", "idle": "2m"}},
	}}, env, orderer)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		t.Fatal(err)
	}
	grant, err := openSessionOverAt(t, net, "gateway", ps["alice"], clock.now())
	if err != nil {
		t.Fatal(err)
	}
	before := gw.Sessions().Stats()
	for i := 0; i < 2; i++ {
		if err := CloseSessionOver(net, "alice", "gateway", grant.Token); err != nil {
			t.Fatalf("close %d: %v", i+1, err)
		}
	}
	if err := CloseSessionOver(net, "alice", "gateway", "never-issued"); err != nil {
		t.Fatalf("close of never-issued token: %v", err)
	}
	after := gw.Sessions().Stats()
	if after.Live != 0 || after.Opened != before.Opened ||
		after.Expired != before.Expired || after.Evicted != before.Evicted || after.Revoked != 0 {
		t.Fatalf("counters skewed by closes: before %+v, after %+v", before, after)
	}
}

// payloadVault collects committed transaction payloads for envelope
// inspection.
type payloadVault struct {
	mu       sync.Mutex
	payloads [][]byte
}

func (v *payloadVault) Name() string { return "vault" }

func (v *payloadVault) Commit(b ledger.Block) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, tx := range b.Txs {
		v.payloads = append(v.payloads, tx.Payload)
	}
	return nil
}

func (v *payloadVault) parse(t *testing.T, i int) Envelope {
	t.Helper()
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.payloads) <= i {
		t.Fatalf("vault holds %d payloads, want index %d", len(v.payloads), i)
	}
	envl, err := ParseEnvelope(v.payloads[i])
	if err != nil {
		t.Fatalf("ParseEnvelope: %v", err)
	}
	return envl
}

// TestEncryptRevokeMemberRacingSeal hammers the cached encrypt stage with
// concurrent sealers while members are revoked mid-flight. The invariant
// under test is install-time exclusion: once RevokeMember returns, every
// envelope sealed afterwards must exclude the revoked member — a racing
// key wrap may not smuggle the revoked identity into a fresh cached epoch
// (channelKeyFor's exclusion-generation re-check). Run under -race this
// also covers the lock discipline of the retry loop.
func TestEncryptRevokeMemberRacingSeal(t *testing.T) {
	clock := newFakeClock()
	_, ps := enrollAt(t, clock.now, "alice", "bob", "carol")
	members := map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
		"carol": ps["carol"].key.Public(),
	}
	enc, err := NewCachedEncrypt(StaticDirectory{"deals": members}, time.Hour, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain((&accept{}).handler, enc)
	seal := func() (Envelope, error) {
		req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("x")}
		req.authenticated = true
		if err := chain.Execute(context.Background(), req); err != nil {
			return Envelope{}, err
		}
		return ParseEnvelope(req.Payload)
	}

	var bobRevoked, carolRevoked atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// Sample the flags BEFORE sealing: if a revocation had
				// completed by then, the envelope must not include them.
				bobGone, carolGone := bobRevoked.Load(), carolRevoked.Load()
				envl, err := seal()
				if err != nil {
					t.Errorf("concurrent seal: %v", err)
					return
				}
				if _, ok := envl.Keys["bob"]; ok && bobGone {
					t.Errorf("envelope sealed after bob's revocation wraps a key for bob (epoch %d)", envl.Epoch)
					return
				}
				if _, ok := envl.Keys["carol"]; ok && carolGone {
					t.Errorf("envelope sealed after carol's revocation wraps a key for carol (epoch %d)", envl.Epoch)
					return
				}
			}
		}()
	}
	enc.RevokeMember("bob")
	bobRevoked.Store(true)
	enc.RevokeMember("carol")
	carolRevoked.Store(true)
	wg.Wait()

	// Steady state: only alice remains a recipient.
	envl, err := seal()
	if err != nil {
		t.Fatal(err)
	}
	if len(envl.Keys) != 1 {
		t.Fatalf("post-revocation recipients = %d, want 1 (alice)", len(envl.Keys))
	}
	if _, err := OpenEnvelope(envl, "alice", ps["alice"].key); err != nil {
		t.Fatalf("surviving member cannot open: %v", err)
	}
}

// TestGatewayCloseDetachesRevocationPush pins the subscription lifecycle:
// a closed gateway stops receiving revocation pushes (no sync, no session
// eviction), while pull paths keep working.
func TestGatewayCloseDetachesRevocationPush(t *testing.T) {
	clock := newFakeClock()
	ca, ps := enrollAt(t, clock.now, "alice")
	env := Env{CAKey: ca.PublicKey(), Now: clock.now, Revoker: ca}
	cfg := Config{Stages: []StageConfig{
		{Name: StageSession, Params: map[string]string{"ttl": "10m", "idle": "5m", "revokecheck": "sweep", "revokesweep": "1h"}},
	}}
	gw, err := NewGateway("gw", cfg, env, ordering.New("op", ordering.VisibilityFull))
	if err != nil {
		t.Fatal(err)
	}
	openSession(t, gw.Sessions(), ps["alice"])

	gw.Close()
	gw.Close() // idempotent
	ca.Revoke(ps["alice"].cert.Serial)
	if got := gw.Stats(); got.RevocationSweeps != 0 || got.SessionsRevoked != 0 {
		t.Fatalf("closed gateway still received the push: %+v", got)
	}
	// The pull path is unaffected: a direct sync still applies the delta.
	if n := gw.SyncRevocations(); n != 1 {
		t.Fatalf("SyncRevocations after Close = %d, want 1", n)
	}
}

// TestSessionOpenRacingRevocation stresses the Open/Revoke interleaving:
// whatever order a handshake and a revocation sweep land in, no session
// rooted in the revoked certificate may survive once the sweep has run —
// an Open that slipped past the unlocked fast-fail must be caught by the
// in-lock re-check (or evicted by a later sweep), never left resolvable.
func TestSessionOpenRacingRevocation(t *testing.T) {
	clock := newFakeClock()
	for i := 0; i < 60; i++ {
		name := fmt.Sprintf("org-%d", i)
		ca, ps, mgr := revocableManager(t, clock, RevokeCheckSweep, time.Hour, name)
		hello, err := NewSessionHelloAt(name, ps[name].cert, ps[name].key, clock.now())
		if err != nil {
			t.Fatal(err)
		}
		var grant SessionGrant
		var openErr error
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			grant, openErr = mgr.Open(hello)
		}()
		go func() {
			defer wg.Done()
			ca.Revoke(ps[name].cert.Serial)
			mgr.SweepRevoked()
		}()
		wg.Wait()
		// Settle: one more sweep covers the insert-then-revoke order.
		mgr.SweepRevoked()
		if openErr != nil {
			if !errors.Is(openErr, ErrSessionRevoked) {
				t.Fatalf("iteration %d: Open = %v, want ErrSessionRevoked", i, openErr)
			}
			continue
		}
		if _, _, _, err := mgr.resolve(grant.Token, ""); err == nil {
			t.Fatalf("iteration %d: revoked certificate kept a resolvable session", i)
		}
	}
}

// TestRevocationRotationFlowKeepsEnvelopeMembership pins the
// superseded-cert semantics end to end: routine key rotation (re-enroll,
// then revoke the old serial) kills sessions rooted in the old
// certificate but must NOT exclude the identity from envelopes — and an
// identity revoked outright can be readmitted after re-enrollment.
func TestRevocationRotationFlowKeepsEnvelopeMembership(t *testing.T) {
	clock := newFakeClock()
	ca, ps := enrollAt(t, clock.now, "alice", "bob")
	memberKeys := map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
	}
	env := Env{
		CAKey:     ca.PublicKey(),
		Directory: StaticDirectory{"deals": memberKeys},
		Log:       audit.NewLog(),
		Now:       clock.now,
		Revoker:   ca,
	}
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope)
	gw, err := NewGateway("gw", revocableGatewayConfig("resolve"), env, orderer)
	if err != nil {
		t.Fatal(err)
	}
	vault := &payloadVault{}
	gw.Bind("deals", vault)
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		t.Fatal(err)
	}
	aliceGrant, err := openSessionOverAt(t, net, "gateway", ps["alice"], clock.now())
	if err != nil {
		t.Fatal(err)
	}
	submit := func(payload string) Envelope {
		t.Helper()
		req := sessionRequest(t, ps["alice"], aliceGrant.Token, "deals", []byte(payload))
		if _, err := SubmitOver(net, "alice", "gateway", req); err != nil {
			t.Fatalf("submit: %v", err)
		}
		return vault.parse(t, len(vault.payloads)-1)
	}

	// Rotation: bob re-enrolls, then the CA revokes his old serial. Bob's
	// old-cert session dies (serial-exact), but he stays an envelope
	// recipient with no interruption.
	bobOldGrant, err := openSessionOverAt(t, net, "gateway", ps["bob"], clock.now())
	if err != nil {
		t.Fatal(err)
	}
	oldCert := ps["bob"].cert
	renewed, err := ca.Enroll("bob", ps["bob"].key.Public())
	if err != nil {
		t.Fatal(err)
	}
	ps["bob"].cert = renewed
	ca.Revoke(oldCert.Serial)
	stale := sessionRequest(t, ps["bob"], bobOldGrant.Token, "deals", []byte("x"))
	if _, err := SubmitOver(net, "bob", "gateway", stale); !errors.Is(err, ErrSessionRevoked) {
		t.Fatalf("old-cert session after rotation = %v, want ErrSessionRevoked", err)
	}
	if _, err := openSessionOverAt(t, net, "gateway", ps["bob"], clock.now()); err != nil {
		t.Fatalf("re-open under renewed cert: %v", err)
	}
	envl := submit("post-rotation")
	if _, err := OpenEnvelope(envl, "bob", ps["bob"].key); err != nil {
		t.Fatalf("rotated member lost envelope membership: %v", err)
	}

	// Outright withdrawal: revoking bob's current cert excludes him...
	ca.Revoke(renewed.Serial)
	envl = submit("post-withdrawal")
	if _, err := OpenEnvelope(envl, "bob", ps["bob"].key); !errors.Is(err, ErrNotRecipient) {
		t.Fatalf("withdrawn member still a recipient: %v", err)
	}
	// ...and ReadmitMember brings him back on a fresh epoch after
	// re-enrollment.
	prevEpoch := envl.Epoch
	if _, err := ca.Enroll("bob", ps["bob"].key.Public()); err != nil {
		t.Fatal(err)
	}
	gw.ReadmitMember("bob")
	envl = submit("post-readmission")
	if envl.Epoch <= prevEpoch {
		t.Fatalf("readmission did not re-key: epoch %d -> %d", prevEpoch, envl.Epoch)
	}
	if got, err := OpenEnvelope(envl, "bob", ps["bob"].key); err != nil || string(got) != "post-readmission" {
		t.Fatalf("readmitted member read %q, %v", got, err)
	}
}
