package middleware

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/telemetry"
)

// groupCfg is the canonical group-seal pipeline: authn, cached-key encrypt
// in deferred mode, terminal batch sealing (channel, epoch) groups.
func groupCfg(size int, codec string) Config {
	return Config{
		Stages: []StageConfig{
			{Name: StageAuthn},
			{Name: StageEncrypt, Params: map[string]string{"keyttl": "1h"}},
			{Name: StageBatch, Params: map[string]string{"size": fmt.Sprint(size), "groupseal": "on"}},
		},
		Codec: codec,
	}
}

// TestGroupSealReleasesOneEnvelope drives the tentpole end to end in both
// codecs: N submissions release as ONE synthetic group transaction whose
// envelope opens back to the original payloads, byte-identical to what the
// per-envelope seal of the same plaintext decrypts to.
func TestGroupSealReleasesOneEnvelope(t *testing.T) {
	for _, codec := range []string{CodecJSON, CodecBinary} {
		t.Run(codec, func(t *testing.T) {
			ca, ps := enroll(t, "alice", "bob")
			dir := StaticDirectory{"deals": {
				"alice": ps["alice"].key.Public(),
				"bob":   ps["bob"].key.Public(),
			}}
			env := Env{CAKey: ca.PublicKey(), Directory: dir}
			sink := &accept{}
			chain, err := groupCfg(3, codec).Build(env, sink.handler)
			if err != nil {
				t.Fatal(err)
			}
			payloads := [][]byte{[]byte("trade-0"), []byte("trade-1"), []byte("trade-2")}
			for i, p := range payloads {
				if err := chain.Execute(context.Background(), signedRequest(t, ps["alice"], "deals", p)); err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
			}
			if sink.count() != 1 {
				t.Fatalf("terminal saw %d requests, want 1 group release for 3 submissions", sink.count())
			}
			greq := sink.seen[0]
			if greq.Principal != BatchPrincipal {
				t.Errorf("group principal = %q, want %q", greq.Principal, BatchPrincipal)
			}
			if got, want := greq.Meta[MetaBatch], GroupEnvelopeScheme+" n=3"; got != want {
				t.Errorf("batch meta = %q, want %q", got, want)
			}
			genv, err := ParseGroupEnvelope(greq.Payload)
			if err != nil {
				t.Fatal(err)
			}
			if genv.Channel != "deals" || genv.Count != 3 {
				t.Fatalf("group envelope channel/count = %s/%d, want deals/3", genv.Channel, genv.Count)
			}
			// Every channel member opens the group back to the exact
			// submission payloads.
			for _, member := range []string{"alice", "bob"} {
				segs, err := OpenGroupEnvelope(genv, member, ps[member].key)
				if err != nil {
					t.Fatalf("open as %s: %v", member, err)
				}
				if len(segs) != len(payloads) {
					t.Fatalf("%s recovered %d payloads, want %d", member, len(segs), len(payloads))
				}
				for i := range payloads {
					if !bytes.Equal(segs[i], payloads[i]) {
						t.Errorf("%s payload %d = %q, want %q", member, i, segs[i], payloads[i])
					}
				}
			}
			// Non-members stay locked out.
			if _, err := OpenGroupEnvelope(genv, "mallory", ps["alice"].key); !errors.Is(err, ErrNotRecipient) {
				t.Errorf("non-member open = %v, want ErrNotRecipient", err)
			}

			// The per-envelope path over the same plaintext decrypts to the
			// same bytes: group sealing changes the framing, not the data.
			single := &accept{}
			cfg := Config{
				Stages: []StageConfig{
					{Name: StageAuthn},
					{Name: StageEncrypt, Params: map[string]string{"keyttl": "1h"}},
				},
				Codec: codec,
			}
			schain, err := cfg.Build(env, single.handler)
			if err != nil {
				t.Fatal(err)
			}
			if err := schain.Execute(context.Background(), signedRequest(t, ps["alice"], "deals", payloads[0])); err != nil {
				t.Fatal(err)
			}
			senv, err := ParseEnvelope(single.seen[0].Payload)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := OpenEnvelope(senv, "bob", ps["bob"].key)
			if err != nil {
				t.Fatal(err)
			}
			gsegs, err := OpenGroupEnvelope(genv, "bob", ps["bob"].key)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(plain, gsegs[0]) {
				t.Errorf("per-envelope plaintext %q != group segment %q", plain, gsegs[0])
			}
		})
	}
}

// TestGroupSealFlushDrainsOpenBuckets covers the partial-bucket path: a
// flush seals and releases whatever each (channel, epoch) bucket holds.
func TestGroupSealFlushDrainsOpenBuckets(t *testing.T) {
	ca, ps := enroll(t, "alice")
	dir := StaticDirectory{
		"deals":  {"alice": ps["alice"].key.Public()},
		"trades": {"alice": ps["alice"].key.Public()},
	}
	sink := &accept{}
	chain, err := groupCfg(8, CodecBinary).Build(Env{CAKey: ca.PublicKey(), Directory: dir}, sink.handler)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := chain.stage(StageBatch).(*Batch)
	if !ok || !b.GroupSeal() {
		t.Fatal("batch stage not in group-seal mode")
	}
	for _, ch := range []string{"deals", "trades", "deals"} {
		if err := chain.Execute(context.Background(), signedRequest(t, ps["alice"], ch, []byte("p-"+ch))); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Pending(); got != 3 {
		t.Fatalf("pending = %d, want 3 buffered across two channel buckets", got)
	}
	if err := b.Flush(context.Background()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if sink.count() != 2 {
		t.Fatalf("terminal saw %d releases, want 2 (one per channel bucket)", sink.count())
	}
	if b.Pending() != 0 {
		t.Fatalf("pending = %d after flush, want 0", b.Pending())
	}
	if b.GroupsSealed() != 2 || b.GroupTxs() != 3 {
		t.Fatalf("sealed/txs = %d/%d, want 2/3", b.GroupsSealed(), b.GroupTxs())
	}
}

// TestBatchReleaseSpanOnOwnTrace is the trace re-homing regression
// (satellite 1): each buffered member's "batch.release" span must land on
// that member's OWN trace — the old code attributed every member's
// delivery to the filling request's trace and the batch stage's exclusive
// time.
func TestBatchReleaseSpanOnOwnTrace(t *testing.T) {
	ca, ps := enroll(t, "alice")
	cfg := Config{
		Stages: []StageConfig{
			{Name: StageAuthn},
			{Name: StageBatch, Params: map[string]string{"size": "3"}},
		},
		Trace: "1000000", // local sampler effectively off: carried IDs only
	}
	backend := ordering.New("op", ordering.VisibilityFull)
	backend.Subscribe("deals", func(ledger.Block) error { return nil })
	gw, err := NewGateway("gw", cfg, Env{CAKey: ca.PublicKey()}, backend)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		req := signedRequest(t, ps["alice"], "deals", []byte{byte(i)})
		req.TraceID = uint64(0xb0 + i)
		if err := gw.Submit(context.Background(), req); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	recs := gw.Tracer().Snapshot()
	if len(recs) != 3 {
		t.Fatalf("trace ring has %d records, want 3", len(recs))
	}
	for _, rec := range recs {
		var releases int
		for _, s := range rec.Spans {
			if s.Stage == "batch.release" {
				releases++
				if s.Err != "" {
					t.Errorf("trace %s release span carries error %q", rec.ID, s.Err)
				}
			}
		}
		if releases != 1 {
			t.Errorf("trace %s has %d batch.release spans, want exactly 1 (its own delivery)", rec.ID, releases)
		}
	}
}

// TestGroupReleaseSpanAmortizedShare checks the group-mode spans: every
// member's trace gets one release span whose inclusive time is the whole
// group release and whose exclusive time is the 1/N amortized share.
func TestGroupReleaseSpanAmortizedShare(t *testing.T) {
	ca, ps := enroll(t, "alice")
	dir := StaticDirectory{"deals": {"alice": ps["alice"].key.Public()}}
	sink := &accept{}
	chain, err := groupCfg(2, CodecBinary).Build(Env{CAKey: ca.PublicKey(), Directory: dir}, sink.handler)
	if err != nil {
		t.Fatal(err)
	}
	tracer := telemetry.NewTracer(1, 8)
	traces := make([]*telemetry.Trace, 2)
	for i := range traces {
		req := signedRequest(t, ps["alice"], "deals", []byte{byte(i)})
		traces[i] = tracer.For(uint64(0xc0 + i))
		req.trace = traces[i]
		if err := chain.Execute(context.Background(), req); err != nil {
			t.Fatal(err)
		}
		tracer.Finish(traces[i], nil)
	}
	for i := range traces {
		rec := tracer.Snapshot()[i]
		var span *telemetry.Span
		for j := range rec.Spans {
			if rec.Spans[j].Stage == "batch.release" {
				span = &rec.Spans[j]
			}
		}
		if span == nil {
			t.Fatalf("trace %s has no batch.release span: %+v", rec.ID, rec.Spans)
		}
		if span.ExclusiveNanos != span.Nanos/2 {
			t.Errorf("trace %s release excl %d, want amortized half of incl %d", rec.ID, span.ExclusiveNanos, span.Nanos)
		}
	}
}

// TestAuditSkipsRejectedSubmission is the record-after-accept regression
// (satellite 2): a submission the downstream rejects — here a tripped
// breaker — never reached the observable surface and must leave NO entry
// in the leakage log, not even metadata.
func TestAuditSkipsRejectedSubmission(t *testing.T) {
	log := audit.NewLog()
	au, err := NewAudit(log, "gw-op")
	if err != nil {
		t.Fatal(err)
	}
	clock := newFakeClock()
	br, err := NewBreaker(1, time.Second, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	down := true
	terminal := func(ctx context.Context, req *Request) error {
		if down {
			return errors.New("backend down")
		}
		return nil
	}
	chain := NewChain(terminal, au, br)
	submit := func(payload string) error {
		return chain.Execute(context.Background(), &Request{
			Channel: "c", Principal: "alice", Backend: "fabric",
			Payload: []byte(payload), authenticated: true,
		})
	}
	// Trip the breaker, then hit the open circuit: both rejected, neither
	// may appear in the log.
	if err := submit("tripping"); err == nil {
		t.Fatal("failing backend accepted")
	}
	if err := submit("rejected"); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-circuit submit = %v, want ErrCircuitOpen", err)
	}
	if log.Len() != 0 {
		t.Fatalf("leakage log holds %d observations of rejected submissions: %v", log.Len(), log.All())
	}
	// Once the backend recovers and the cooldown passes, accepted traffic
	// records normally — including the plaintext leak, since no encrypt
	// stage runs here.
	down = false
	clock.advance(2 * time.Second)
	if err := submit("accepted"); err != nil {
		t.Fatal(err)
	}
	if !log.SawAny("gw-op", audit.ClassTxMetadata) || !log.Saw("gw-op", audit.ClassIdentity, "alice") {
		t.Fatal("accepted submission not recorded")
	}
	if !log.SawAny("gw-op", audit.ClassTxData) {
		t.Fatal("plaintext submission must record a tx-data observation")
	}
}

// TestRetryBatchTransientMidGroup is satellite 3: with retry ahead of
// batch, a TRANSIENT failure in the middle of a released group must
// surface as the permanent ErrBatchRelease — one delivery attempt per
// member, no replay of the batch stage.
func TestRetryBatchTransientMidGroup(t *testing.T) {
	retry := mustRetry(t)
	b, err := NewBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	attempts := make(map[byte]int)
	terminal := func(ctx context.Context, req *Request) error {
		attempts[req.Payload[0]]++
		if req.Payload[0] == 1 {
			return fmt.Errorf("partition: %w", ErrTransient)
		}
		return nil
	}
	chain := NewChain(terminal, retry, b)
	var last error
	for i := 0; i < 3; i++ {
		last = chain.Execute(context.Background(), &Request{
			Channel: "c", Principal: "p", Payload: []byte{byte(i)},
		})
		if i < 2 && last != nil {
			t.Fatalf("buffered submit %d: %v", i, last)
		}
	}
	if !errors.Is(last, ErrBatchRelease) {
		t.Fatalf("filling submit = %v, want ErrBatchRelease", last)
	}
	if IsTransient(last) {
		t.Fatalf("release error leaked its transient marker: %v", last)
	}
	for i := byte(0); i < 3; i++ {
		if attempts[i] != 1 {
			t.Fatalf("member %d delivered %d times, want exactly 1 (attempts: %v)", i, attempts[i], attempts)
		}
	}
	if b.Pending() != 0 {
		t.Fatalf("pending = %d after release, want 0", b.Pending())
	}
}

// TestSubmitAsyncResolvesPerMember covers the completion futures: inline
// outcomes resolve before SubmitAsync returns, buffered members resolve at
// release with their OWN delivery outcome in plain mode.
func TestSubmitAsyncResolvesPerMember(t *testing.T) {
	ca, ps := enroll(t, "alice")
	cfg := Config{Stages: []StageConfig{
		{Name: StageAuthn},
		{Name: StageBatch, Params: map[string]string{"size": "2"}},
	}}
	backend := ordering.New("op", ordering.VisibilityFull)
	backend.Subscribe("deals", func(ledger.Block) error { return nil })
	gw, err := NewGateway("gw", cfg, Env{CAKey: ca.PublicKey()}, backend)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	f1, err := gw.SubmitAsync(ctx, signedRequest(t, ps["alice"], "deals", []byte("m0")))
	if err != nil {
		t.Fatal(err)
	}
	// Buffered: the future is unresolved until the group releases.
	short, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if err := f1.Wait(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("buffered future resolved early: %v", err)
	}
	f2, err := gw.SubmitAsync(ctx, signedRequest(t, ps["alice"], "deals", []byte("m1")))
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range []*SubmitFuture{f1, f2} {
		if err := f.Wait(ctx); err != nil {
			t.Fatalf("member %d future: %v", i, err)
		}
	}
	// Inline rejection resolves immediately with the rejection.
	bad := signedRequest(t, ps["alice"], "deals", []byte("m2"))
	bad.Payload = []byte("tampered")
	f3, err := gw.SubmitAsync(ctx, bad)
	if err == nil {
		t.Fatal("tampered submission accepted")
	}
	if werr := f3.Wait(ctx); !errors.Is(werr, ErrBadSignature) {
		t.Fatalf("rejected future = %v, want ErrBadSignature", werr)
	}
}

// TestSubmitAsyncGroupShareFate: in group-seal mode the group travels as
// one transaction, so every member future resolves with the group's
// outcome — nil on success, the ErrBatchRelease-wrapped error on failure.
func TestSubmitAsyncGroupShareFate(t *testing.T) {
	ca, ps := enroll(t, "alice")
	dir := StaticDirectory{"deals": {"alice": ps["alice"].key.Public()}}
	fail := false
	terminal := func(ctx context.Context, req *Request) error {
		if fail {
			return errors.New("orderer down")
		}
		return nil
	}
	chain, err := groupCfg(2, CodecBinary).Build(Env{CAKey: ca.PublicKey(), Directory: dir}, terminal)
	if err != nil {
		t.Fatal(err)
	}
	submitAsync := func(payload string) (*SubmitFuture, error) {
		req := signedRequest(t, ps["alice"], "deals", []byte(payload))
		req.done = make(chan error, 1)
		f := &SubmitFuture{ch: req.done}
		err := chain.Execute(context.Background(), req)
		if !req.buffered {
			req.complete(err)
		}
		return f, err
	}
	ctx := context.Background()
	var futures []*SubmitFuture
	for i := 0; i < 2; i++ {
		f, err := submitAsync(fmt.Sprintf("ok-%d", i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		futures = append(futures, f)
	}
	for i, f := range futures {
		if err := f.Wait(ctx); err != nil {
			t.Fatalf("member %d of successful group: %v", i, err)
		}
	}
	fail = true
	f1, err := submitAsync("doomed-0")
	if err != nil {
		t.Fatal(err)
	}
	f2, ferr := submitAsync("doomed-1")
	if !errors.Is(ferr, ErrBatchRelease) {
		t.Fatalf("filling submit = %v, want ErrBatchRelease", ferr)
	}
	for i, f := range []*SubmitFuture{f1, f2} {
		if err := f.Wait(ctx); !errors.Is(err, ErrBatchRelease) {
			t.Fatalf("member %d future = %v, want the group's ErrBatchRelease", i, err)
		}
	}
}
