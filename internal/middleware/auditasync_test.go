package middleware

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/ordering"
)

// TestAsyncAuditRecordsOffPath checks the ring's happy path: Handle only
// enqueues, Flush catches the drainer up, and every accepted submission's
// observation lands in the log.
func TestAsyncAuditRecordsOffPath(t *testing.T) {
	log := audit.NewLog()
	au, err := NewAsyncAudit(log, "gw-op", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer au.Close()
	if !au.Async() {
		t.Fatal("NewAsyncAudit built a synchronous stage")
	}
	chain := NewChain((&accept{}).handler, au)
	const n = 32
	for i := 0; i < n; i++ {
		req := &Request{Channel: "c", Principal: "alice", Payload: []byte(fmt.Sprintf("p%d", i))}
		if err := chain.Execute(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	au.Flush()
	if got := au.Drained(); got != n {
		t.Fatalf("drained %d after flush, want %d", got, n)
	}
	if items := log.ItemsSeen("gw-op", audit.ClassTxMetadata); len(items) != n {
		t.Fatalf("log holds %d metadata observations, want %d", len(items), n)
	}
	if au.Shed() != 0 {
		t.Fatalf("shed %d with an idle ring, want 0", au.Shed())
	}
}

// TestAsyncAuditShedExact pins the shed accounting: with the drainer held
// off, a depth-D ring accepts exactly D entries and sheds — counted, never
// blocking — everything past them. The drainer then recovers exactly the
// accepted entries.
func TestAsyncAuditShedExact(t *testing.T) {
	log := audit.NewLog()
	const depth = 4
	// Build the ring by hand WITHOUT starting the drainer, so the fill is
	// deterministic; start it afterwards to drain.
	au, err := NewAudit(log, "gw-op")
	if err != nil {
		t.Fatal(err)
	}
	au.ring = make(chan auditEntry, depth)
	au.flushCond = sync.NewCond(&au.flushMu)

	chain := NewChain((&accept{}).handler, au)
	const total = depth + 5
	for i := 0; i < total; i++ {
		req := &Request{Channel: "c", Principal: "alice", Payload: []byte(fmt.Sprintf("p%d", i))}
		if err := chain.Execute(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if got := au.Shed(); got != total-depth {
		t.Fatalf("shed = %d, want exactly %d (ring depth %d, %d submissions)", got, total-depth, depth, total)
	}
	if got := au.Enqueued(); got != depth {
		t.Fatalf("enqueued = %d, want %d", got, depth)
	}
	au.wg.Add(1)
	go au.drain()
	au.Flush()
	au.Close()
	if got := au.Drained(); got != depth {
		t.Fatalf("drained = %d, want %d", got, depth)
	}
	if items := log.ItemsSeen("gw-op", audit.ClassTxMetadata); len(items) != depth {
		t.Fatalf("log holds %d observations, want the %d accepted ones", len(items), depth)
	}
}

// TestAsyncAuditConcurrentHandleFlushClose is the -race suite for the
// ring's lifecycle: submitters, flushers, and a closer race, and the
// invariant at the end is exact — every entry that entered the ring was
// recorded (clean shutdown loses nothing), every other submission was
// either shed (counted) or recorded inline after close.
func TestAsyncAuditConcurrentHandleFlushClose(t *testing.T) {
	log := audit.NewLog()
	au, err := NewAsyncAudit(log, "gw-op", 8)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain((&accept{}).handler, au)

	const workers = 4
	const perWorker = 200
	var handled sync.WaitGroup
	for w := 0; w < workers; w++ {
		handled.Add(1)
		go func(seed int) {
			defer handled.Done()
			for i := 0; i < perWorker; i++ {
				req := &Request{Channel: "c", Principal: "alice",
					Payload: []byte(fmt.Sprintf("w%d-p%d", seed, i))}
				if err := chain.Execute(context.Background(), req); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(w)
	}
	// Flushers race the submitters and the close below.
	var aux sync.WaitGroup
	for f := 0; f < 2; f++ {
		aux.Add(1)
		go func() {
			defer aux.Done()
			for i := 0; i < 50; i++ {
				au.Flush()
			}
		}()
	}
	// Close mid-traffic: submissions after it record inline, entries
	// already accepted drain before Close returns.
	aux.Add(1)
	go func() {
		defer aux.Done()
		au.Close()
	}()
	handled.Wait()
	aux.Wait()
	au.Close() // idempotent

	if got, want := au.Drained(), au.Enqueued(); got != want {
		t.Fatalf("drained %d of %d enqueued: clean shutdown lost ring entries", got, want)
	}
	recorded := len(log.ItemsSeen("gw-op", audit.ClassTxMetadata))
	accounted := uint64(recorded) + au.Shed()
	if accounted != workers*perWorker {
		t.Fatalf("recorded %d + shed %d = %d, want every one of %d submissions accounted for",
			recorded, au.Shed(), accounted, workers*perWorker)
	}
}

// TestGatewayCloseFlushesAuditRing wires the async ring through Config and
// checks Gateway.Close drains it: after close, every accepted submission's
// observation is in the log.
func TestGatewayCloseFlushesAuditRing(t *testing.T) {
	ca, ps := enroll(t, "alice")
	cfg := Config{Stages: []StageConfig{
		{Name: StageAuthn},
		{Name: StageAudit, Params: map[string]string{"auditasync": "128"}},
	}}
	backend := ordering.New("op", ordering.VisibilityFull)
	backend.Subscribe("deals", func(ledger.Block) error { return nil })
	log := audit.NewLog()
	gw, err := NewGateway("gw", cfg, Env{CAKey: ca.PublicKey(), Log: log}, backend)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	for i := 0; i < n; i++ {
		if err := gw.Submit(context.Background(), signedRequest(t, ps["alice"], "deals", []byte(fmt.Sprintf("p%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	gw.Close()
	if items := log.ItemsSeen("gateway", audit.ClassTxMetadata); len(items) != n {
		t.Fatalf("log holds %d observations after Close, want %d", len(items), n)
	}
}

// TestConfigAuditAsyncValidation rejects a negative ring depth and keeps 0
// synchronous.
func TestConfigAuditAsyncValidation(t *testing.T) {
	log := audit.NewLog()
	build := func(depth string) error {
		cfg := Config{Stages: []StageConfig{
			{Name: StageAudit, Params: map[string]string{"auditasync": depth}},
		}}
		_, err := cfg.Build(Env{Log: log}, (&accept{}).handler)
		return err
	}
	if err := build("-1"); err == nil {
		t.Fatal("negative auditasync accepted")
	}
	if err := build("0"); err != nil {
		t.Fatalf("auditasync=0 (synchronous) rejected: %v", err)
	}
	if err := build("256"); err != nil {
		t.Fatalf("auditasync=256 rejected: %v", err)
	}
}
