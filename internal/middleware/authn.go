package middleware

import (
	"context"
	"fmt"
	"time"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/pki"
)

// Authn verifies the submitter: the attached certificate must chain to the
// pinned consortium CA key, name the request principal, and the request
// signature must verify against the certified key (§2.1 PKI onboarding).
type Authn struct {
	caKey dcrypto.PublicKey
	now   func() time.Time
}

// NewAuthn creates the authn stage pinned to the consortium CA key.
func NewAuthn(caKey dcrypto.PublicKey, now func() time.Time) *Authn {
	if now == nil {
		now = time.Now
	}
	return &Authn{caKey: caKey, now: now}
}

// Name implements Stage.
func (a *Authn) Name() string { return StageAuthn }

// Handle implements Stage.
func (a *Authn) Handle(ctx context.Context, req *Request, next Handler) error {
	if req.authenticated {
		// An upstream session stage already bound the request to a
		// verified principal; the full PKI check would be pure overhead.
		return next(ctx, req)
	}
	if err := pki.VerifyCertificate(req.Cert, a.caKey, a.now()); err != nil {
		return fmt.Errorf("authn %s: %w", req.Principal, err)
	}
	if req.Cert.Identity != req.Principal {
		return fmt.Errorf("%w: cert for %q, request by %q",
			ErrIdentityMismatch, req.Cert.Identity, req.Principal)
	}
	key, err := req.Cert.Key()
	if err != nil {
		return fmt.Errorf("authn %s: %w", req.Principal, err)
	}
	d := req.Digest()
	if err := key.Verify(d[:], req.Sig); err != nil {
		return fmt.Errorf("%w: principal %s", ErrBadSignature, req.Principal)
	}
	req.authenticated = true
	return next(ctx, req)
}
