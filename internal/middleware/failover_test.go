package middleware

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dltprivacy/internal/ledger"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/transport"
)

// mkShardTx builds a minimal transaction for driving an ordering backend
// directly (bypassing the gateway chain).
func mkShardTx(channel, key string) ledger.Transaction {
	return ledger.Transaction{
		Channel:   channel,
		Creator:   "BankA",
		Payload:   []byte("payload"),
		Writes:    []ledger.Write{{Key: key, Value: []byte("v")}},
		Timestamp: time.Unix(1700000000, 0).UTC(),
	}
}

// newReplicatedShardedOrderer builds an n-shard topology of 3-node
// replicated shards.
func newReplicatedShardedOrderer(t testing.TB, n int) *ordering.ShardedBackend {
	t.Helper()
	shards := make([]ordering.Backend, n)
	for i := range shards {
		rs, err := ordering.NewReplicatedShard(
			[]string{
				fmt.Sprintf("shard%d-a", i),
				fmt.Sprintf("shard%d-b", i),
				fmt.Sprintf("shard%d-c", i),
			}, ordering.VisibilityEnvelope)
		if err != nil {
			t.Fatalf("NewReplicatedShard: %v", err)
		}
		shards[i] = rs
	}
	sb, err := ordering.NewSharded(shards)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	return sb
}

func TestNoLeaderIsTransient(t *testing.T) {
	if !IsTransient(ordering.ErrNoLeader) {
		t.Fatal("ErrNoLeader not transient")
	}
	if !IsTransient(fmt.Errorf("shard 3: %w", ordering.ErrNoLeader)) {
		t.Fatal("wrapped ErrNoLeader not transient")
	}
	if IsTransient(ordering.ErrNoQuorum) {
		t.Fatal("ErrNoQuorum transient: a quorumless shard must fail fast")
	}
}

// TestRetrySubmitSucceedsAfterElection is the failover regression the
// retry stage exists for: a submission that lands inside a shard's
// election window (one ErrNoLeader) succeeds on the retry, invisibly to
// the caller.
func TestRetrySubmitSucceedsAfterElection(t *testing.T) {
	attempts := 0
	electing := func(ctx context.Context, req *Request) error {
		attempts++
		if attempts == 1 {
			return fmt.Errorf("shard 0: %w", ordering.ErrNoLeader)
		}
		return nil
	}
	chain := NewChain(electing, mustRetry(t))
	if err := chain.Execute(context.Background(), &Request{Channel: "deals", Principal: "p"}); err != nil {
		t.Fatalf("submit across election window = %v, want success", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (one election, one retry)", attempts)
	}
}

// TestBreakerExemptsFailoverWindow pins the tripping policy: any number of
// election-window errors leaves a closed circuit closed, while quorum loss
// and ordinary failures still count.
func TestBreakerExemptsFailoverWindow(t *testing.T) {
	clock := newFakeClock()
	br, err := NewBreaker(2, time.Second, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	var backendErr error
	backend := func(ctx context.Context, req *Request) error { return backendErr }
	chain := NewChain(backend, br)
	req := func() *Request { return &Request{Channel: "deals", Principal: "p", Backend: "shard-0"} }

	// Far more failover-window errors than the threshold: still closed.
	backendErr = fmt.Errorf("shard 0: %w", ordering.ErrNoLeader)
	for i := 0; i < 5; i++ {
		if err := chain.Execute(context.Background(), req()); !errors.Is(err, ordering.ErrNoLeader) {
			t.Fatalf("execute %d = %v, want ErrNoLeader through", i, err)
		}
	}
	if got := br.State("shard-0"); got != "closed" {
		t.Fatalf("state after failover-window errors = %s, want closed", got)
	}

	// Quorum loss is not a failover window: it trips at the threshold.
	backendErr = fmt.Errorf("shard 0: %w", ordering.ErrNoQuorum)
	for i := 0; i < 2; i++ {
		if err := chain.Execute(context.Background(), req()); err == nil {
			t.Fatal("quorumless backend reported success")
		}
	}
	if got := br.State("shard-0"); got != "open" {
		t.Fatalf("state after quorum loss = %s, want open", got)
	}
}

// TestBreakerHalfOpenFailoverReopens: the exemption applies only to closed
// circuits — a half-open probe that hits an election window reopens the
// circuit (the probe's job is to prove the backend healthy, and it did
// not).
func TestBreakerHalfOpenFailoverReopens(t *testing.T) {
	clock := newFakeClock()
	br, err := NewBreaker(2, time.Second, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	var backendErr error = errors.New("backend down")
	backend := func(ctx context.Context, req *Request) error { return backendErr }
	chain := NewChain(backend, br)
	req := func() *Request { return &Request{Channel: "deals", Principal: "p", Backend: "shard-0"} }
	for i := 0; i < 2; i++ {
		_ = chain.Execute(context.Background(), req())
	}
	if got := br.State("shard-0"); got != "open" {
		t.Fatalf("state = %s, want open", got)
	}
	clock.advance(time.Second)
	backendErr = fmt.Errorf("shard 0: %w", ordering.ErrNoLeader)
	if err := chain.Execute(context.Background(), req()); !errors.Is(err, ordering.ErrNoLeader) {
		t.Fatalf("probe = %v, want ErrNoLeader through", err)
	}
	if got := br.State("shard-0"); got != "open" {
		t.Fatalf("state after failover-window probe = %s, want open", got)
	}
}

// TestGatewayShardedSubmitAcrossFailover wires the whole story: a gateway
// with retry and breaker stages over replicated shards keeps accepting
// submissions while a shard leader is killed mid-run, with zero failures
// surfaced to clients and the breaker left closed.
func TestGatewayShardedSubmitAcrossFailover(t *testing.T) {
	sb := newReplicatedShardedOrderer(t, 2)
	cfg := Config{
		Stages: []StageConfig{
			{Name: StageRetry, Params: map[string]string{"attempts": "3", "backoff": "1ms"}},
			{Name: StageBreaker, Params: map[string]string{"threshold": "5", "cooldown": "250ms"}},
		},
		Shards: 2,
	}
	gw, err := NewGateway("gw", cfg, Env{}, sb)
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	const ch = "deals"
	sink := &countingSink{name: "sink"}
	gw.Bind(ch, sink)

	shard, err := sb.Shard(sb.ShardFor(ch))
	if err != nil {
		t.Fatalf("Shard: %v", err)
	}
	rs := shard.(*ordering.ReplicatedShard)

	var mu sync.Mutex
	submit := func(i int) error {
		mu.Lock()
		defer mu.Unlock()
		return gw.Submit(context.Background(), &Request{
			Channel: ch, Principal: "Alice", Payload: []byte(fmt.Sprintf("p-%d", i)),
		})
	}
	for i := 0; i < 5; i++ {
		if err := submit(i); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if _, err := rs.CrashLeader(ch); err != nil {
		t.Fatalf("CrashLeader: %v", err)
	}
	for i := 5; i < 10; i++ {
		if err := submit(i); err != nil {
			t.Fatalf("Submit %d across failover: %v", i, err)
		}
	}
	if rs.Failovers() != 1 {
		t.Fatalf("Failovers = %d, want 1", rs.Failovers())
	}
	if sink.txs != 10 {
		t.Fatalf("committed %d txs, want 10", sink.txs)
	}
	stats := gw.Stats()
	if stats.Rejected != 0 {
		t.Fatalf("gateway rejected %d submissions during failover", stats.Rejected)
	}
	for _, st := range stats.Shards {
		if st.Failovers > 0 && st.OwnedChannels == 0 {
			t.Fatalf("failover counted on a shard owning no channels: %+v", st)
		}
	}
}

// TestGatewayShardRebalanceTopic drives the shard.rebalance admin topic
// over the transport substrate: a manual migration moves a live channel,
// and a skew pass reports (and performs) automatic moves.
func TestGatewayShardRebalanceTopic(t *testing.T) {
	sb := newShardedOrderer(t, 2)
	cfg := Config{
		Stages: []StageConfig{{Name: StageRateLimit}},
		Shards: 2,
	}
	gw, err := NewGateway("gw", cfg, Env{}, sb)
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gw-endpoint"); err != nil {
		t.Fatalf("AttachTransport: %v", err)
	}

	// Live traffic on two channels, both forced onto shard 0.
	channels := []string{"deals-a", "deals-b"}
	for i, ch := range channels {
		if err := sb.Pin(ch, 0); err != nil {
			t.Fatalf("Pin: %v", err)
		}
		sb.Subscribe(ch, func(ledger.Block) error { return nil })
		for j := 0; j < (i+1)*10; j++ {
			if err := sb.Submit(mkShardTx(ch, fmt.Sprintf("%s-%d", ch, j))); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}

	// Manual move.
	notice, err := RebalanceOver(net, "admin", "gw-endpoint", RebalanceRequest{Channel: channels[0], To: 1})
	if err != nil {
		t.Fatalf("RebalanceOver(manual): %v", err)
	}
	if len(notice.Migrations) != 1 || notice.Migrations[0].To != 1 || notice.Migrations[0].Channel != channels[0] {
		t.Fatalf("manual move notice = %+v", notice)
	}
	if got := sb.ShardFor(channels[0]); got != 1 {
		t.Fatalf("ShardFor after manual move = %d, want 1", got)
	}
	// Repeating the move is a no-op, reported as such.
	notice, err = RebalanceOver(net, "admin", "gw-endpoint", RebalanceRequest{Channel: channels[0], To: 1})
	if err != nil {
		t.Fatalf("RebalanceOver(repeat): %v", err)
	}
	if len(notice.Migrations) != 0 {
		t.Fatalf("repeated move reported migrations: %+v", notice)
	}

	// Skew pass: loads are now 20 on shard 0 (deals-b) vs 10 on shard 1, a
	// single-channel hot shard — nothing to move without relocating the
	// hotspot, so the pass reports no migrations but succeeds.
	notice, err = RebalanceOver(net, "admin", "gw-endpoint", RebalanceRequest{Skew: 1.2})
	if err != nil {
		t.Fatalf("RebalanceOver(skew): %v", err)
	}
	if len(notice.Migrations) != 0 {
		t.Fatalf("skew pass on single-channel shard moved %+v", notice.Migrations)
	}

	// An unsharded gateway refuses the topic.
	solo, err := NewGateway("solo", Config{Stages: []StageConfig{{Name: StageRateLimit}}}, Env{},
		ordering.New("op", ordering.VisibilityEnvelope))
	if err != nil {
		t.Fatalf("NewGateway(solo): %v", err)
	}
	if err := solo.AttachTransport(context.Background(), net, "solo-endpoint"); err != nil {
		t.Fatalf("AttachTransport: %v", err)
	}
	if _, err := RebalanceOver(net, "admin", "solo-endpoint", RebalanceRequest{}); err == nil {
		t.Fatal("unsharded gateway accepted shard.rebalance")
	}
}
