package middleware

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/transport"
)

// enrollAt registers identities with a CA running on the given clock, so
// certificate validity windows line up with fake-clock tests.
func enrollAt(t testing.TB, now func() time.Time, names ...string) (*pki.CA, map[string]*principal) {
	t.Helper()
	ca, err := pki.NewCA("consortium-ca", pki.WithClock(now))
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	out := make(map[string]*principal, len(names))
	for _, name := range names {
		key, err := dcrypto.GenerateKey()
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		cert, err := ca.Enroll(name, key.Public())
		if err != nil {
			t.Fatalf("Enroll %s: %v", name, err)
		}
		out[name] = &principal{name: name, key: key, cert: cert}
	}
	return ca, out
}

// sessionRequest builds a token-bound signed request carrying no
// certificate: the session, not the cert, vouches for the principal.
func sessionRequest(t testing.TB, p *principal, token, channel string, payload []byte) *Request {
	t.Helper()
	req := &Request{
		Channel:      channel,
		Principal:    p.name,
		Payload:      payload,
		SessionToken: token,
	}
	if err := SignRequest(req, p.key); err != nil {
		t.Fatalf("SignRequest: %v", err)
	}
	return req
}

func mustManager(t testing.TB, ca *pki.CA, ttl, idle time.Duration, now func() time.Time) *SessionManager {
	t.Helper()
	mgr, err := NewSessionManager(ca.PublicKey(), ttl, idle, now)
	if err != nil {
		t.Fatalf("NewSessionManager: %v", err)
	}
	return mgr
}

func openSession(t testing.TB, mgr *SessionManager, p *principal) SessionGrant {
	t.Helper()
	hello, err := NewSessionHelloAt(p.name, p.cert, p.key, mgr.now())
	if err != nil {
		t.Fatalf("NewSessionHello: %v", err)
	}
	grant, err := mgr.Open(hello)
	if err != nil {
		t.Fatalf("Open session for %s: %v", p.name, err)
	}
	return grant
}

// openSessionOverAt is OpenSessionOver with an injected hello timestamp,
// for transport tests running the gateway on a fake clock.
func openSessionOverAt(t testing.TB, net *transport.Network, endpoint string, p *principal, at time.Time) (SessionGrant, error) {
	t.Helper()
	hello, err := NewSessionHelloAt(p.name, p.cert, p.key, at)
	if err != nil {
		t.Fatalf("NewSessionHelloAt: %v", err)
	}
	b, err := json.Marshal(hello)
	if err != nil {
		t.Fatalf("marshal hello: %v", err)
	}
	reply, err := net.Send(transport.Message{From: p.name, To: endpoint, Topic: TopicSessionOpen, Payload: b})
	if err != nil {
		return SessionGrant{}, err
	}
	var grant SessionGrant
	if err := json.Unmarshal(reply, &grant); err != nil {
		t.Fatalf("decode grant: %v", err)
	}
	return grant, nil
}

func TestSessionAmortizedAuthn(t *testing.T) {
	clock := newFakeClock()
	ca, ps := enrollAt(t, clock.now, "alice", "bob")
	mgr := mustManager(t, ca, 10*time.Minute, 2*time.Minute, clock.now)
	stage, err := NewSession(mgr)
	if err != nil {
		t.Fatal(err)
	}
	sink := &accept{}
	chain := NewChain(sink.handler, stage, NewAuthn(ca.PublicKey(), clock.now))

	grant := openSession(t, mgr, ps["alice"])
	if grant.Principal != "alice" || grant.Token == "" {
		t.Fatalf("grant = %+v", grant)
	}

	// A token-bound request authenticates with no certificate attached.
	req := sessionRequest(t, ps["alice"], grant.Token, "deals", []byte("trade"))
	if err := chain.Execute(context.Background(), req); err != nil {
		t.Fatalf("session request rejected: %v", err)
	}
	if !req.Authenticated() {
		t.Fatal("session request not marked authenticated")
	}

	// The per-request signature still gates every submission: a tampered
	// payload fails even on a live session.
	tampered := sessionRequest(t, ps["alice"], grant.Token, "deals", []byte("trade"))
	tampered.Payload = []byte("tampered")
	if err := chain.Execute(context.Background(), tampered); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered session request = %v, want ErrBadSignature", err)
	}

	// Bob cannot ride alice's session.
	hijack := sessionRequest(t, ps["bob"], grant.Token, "deals", []byte("trade"))
	if err := chain.Execute(context.Background(), hijack); !errors.Is(err, ErrIdentityMismatch) {
		t.Fatalf("hijacked session = %v, want ErrIdentityMismatch", err)
	}

	// A certificate-bearing request without a token still passes through
	// to the full authn stage: one chain serves both kinds of traffic.
	full := signedRequest(t, ps["bob"], "deals", []byte("trade"))
	if err := chain.Execute(context.Background(), full); err != nil {
		t.Fatalf("cert request through session chain: %v", err)
	}
	if sink.count() != 2 {
		t.Fatalf("terminal saw %d requests, want 2", sink.count())
	}
}

func TestSessionOpenRejectsBadHandshake(t *testing.T) {
	clock := newFakeClock()
	ca, ps := enrollAt(t, clock.now, "alice")
	mgr := mustManager(t, ca, 10*time.Minute, 2*time.Minute, clock.now)

	// A certificate from a different CA.
	_, others := enrollAt(t, clock.now, "alice")
	hello, err := NewSessionHelloAt("alice", others["alice"].cert, others["alice"].key, clock.now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Open(hello); !errors.Is(err, pki.ErrBadCertificate) {
		t.Fatalf("foreign cert = %v, want ErrBadCertificate", err)
	}

	// A certificate naming someone else.
	hello, err = NewSessionHelloAt("mallory", ps["alice"].cert, ps["alice"].key, clock.now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Open(hello); !errors.Is(err, ErrIdentityMismatch) {
		t.Fatalf("mismatched hello = %v, want ErrIdentityMismatch", err)
	}

	// A tampered handshake signature.
	hello, err = NewSessionHelloAt("alice", ps["alice"].cert, ps["alice"].key, clock.now())
	if err != nil {
		t.Fatal(err)
	}
	hello.Nonce = append([]byte(nil), hello.Nonce...)
	hello.Nonce[0] ^= 0xff
	if _, err := mgr.Open(hello); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered hello = %v, want ErrBadSignature", err)
	}

	// A hello issued outside the freshness window, even validly signed.
	hello, err = NewSessionHelloAt("alice", ps["alice"].cert, ps["alice"].key, clock.now().Add(-3*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Open(hello); !errors.Is(err, ErrStaleHello) {
		t.Fatalf("stale hello = %v, want ErrStaleHello", err)
	}

	// A recorded hello replayed verbatim cannot mint a second token.
	hello, err = NewSessionHelloAt("alice", ps["alice"].cert, ps["alice"].key, clock.now())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Open(hello); err != nil {
		t.Fatalf("first open: %v", err)
	}
	if _, err := mgr.Open(hello); !errors.Is(err, ErrReplayedHello) {
		t.Fatalf("replayed hello = %v, want ErrReplayedHello", err)
	}
	if mgr.Len() != 1 {
		t.Fatalf("rejected handshakes left %d sessions, want 1 (the legitimate open)", mgr.Len())
	}
}

func TestSessionTokenLifecycle(t *testing.T) {
	clock := newFakeClock()
	ca, ps := enrollAt(t, clock.now, "alice")
	mgr := mustManager(t, ca, 10*time.Minute, 2*time.Minute, clock.now)
	stage, err := NewSession(mgr)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain((&accept{}).handler, stage)
	submit := func(token string) error {
		return chain.Execute(context.Background(), sessionRequest(t, ps["alice"], token, "deals", []byte("x")))
	}

	// A forged token is rejected with ErrNoSession.
	if err := submit("deadbeef"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("forged token = %v, want ErrNoSession", err)
	}

	// An idle session is evicted with ErrSessionExpired.
	grant := openSession(t, mgr, ps["alice"])
	if err := submit(grant.Token); err != nil {
		t.Fatalf("fresh session rejected: %v", err)
	}
	clock.advance(2*time.Minute + time.Second)
	if err := submit(grant.Token); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("idle session = %v, want ErrSessionExpired", err)
	}
	// Once evicted, the token no longer exists.
	if err := submit(grant.Token); !errors.Is(err, ErrNoSession) {
		t.Fatalf("evicted token = %v, want ErrNoSession", err)
	}

	// Steady use keeps a session alive until the hard TTL.
	grant = openSession(t, mgr, ps["alice"])
	for i := 0; i < 6; i++ {
		clock.advance(90 * time.Second) // under the idle window each step
		if err := submit(grant.Token); err != nil {
			t.Fatalf("active session rejected at step %d: %v", i, err)
		}
	}
	clock.advance(90 * time.Second) // 10.5m total: past the hard TTL
	if err := submit(grant.Token); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("session past TTL = %v, want ErrSessionExpired", err)
	}

	// Close ends a live session immediately.
	grant = openSession(t, mgr, ps["alice"])
	mgr.Close(grant.Token)
	if err := submit(grant.Token); !errors.Is(err, ErrNoSession) {
		t.Fatalf("closed session = %v, want ErrNoSession", err)
	}
}

func TestSessionSweepBoundsTable(t *testing.T) {
	clock := newFakeClock()
	ca, ps := enrollAt(t, clock.now, "alice")
	mgr := mustManager(t, ca, 10*time.Minute, time.Minute, clock.now)
	for i := 0; i < 8; i++ {
		openSession(t, mgr, ps["alice"])
	}
	if mgr.Len() != 8 {
		t.Fatalf("sessions = %d, want 8", mgr.Len())
	}
	// All eight go idle; the next Open sweeps them out.
	clock.advance(time.Minute + time.Second)
	openSession(t, mgr, ps["alice"])
	if mgr.Len() != 1 {
		t.Fatalf("sessions after sweep = %d, want 1 (abandoned sessions must be evicted)", mgr.Len())
	}
}

func TestConfigSessionPlacement(t *testing.T) {
	rejected := []struct {
		name string
		cfg  Config
	}{
		{"session after authn", stageList(StageAuthn, StageSession)},
		{"ratelimit before session", stageList(StageRateLimit, StageSession)},
		{"encrypt without any authenticator", stageList(StageEncrypt)},
		{"bad session ttl", Config{Stages: []StageConfig{
			{Name: StageSession, Params: map[string]string{"ttl": "soon"}},
		}}},
		{"zero session ttl", Config{Stages: []StageConfig{
			{Name: StageSession, Params: map[string]string{"ttl": "0s"}},
		}}},
		{"bad encrypt keyttl", Config{Stages: []StageConfig{
			{Name: StageSession},
			{Name: StageEncrypt, Params: map[string]string{"keyttl": "soon"}},
		}}},
	}
	for _, tc := range rejected {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.cfg.Build(testEnv(t), nil); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Build = %v, want ErrBadConfig", err)
			}
		})
	}

	// A session-only authenticator satisfies encrypt's ordering rule, and
	// the full dual-path chain builds.
	for _, ok := range []Config{
		stageList(StageSession, StageEncrypt),
		stageList(StageSession, StageAuthn, StageEncrypt, StageAudit, StageRateLimit, StageBatch),
	} {
		if _, err := ok.Build(testEnv(t), nil); err != nil {
			t.Fatalf("valid session chain rejected: %v", err)
		}
	}
}

func TestEncryptKeyCacheEpochsAndRotation(t *testing.T) {
	clock := newFakeClock()
	_, ps := enrollAt(t, clock.now, "alice", "bob", "carol")
	members := map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
	}
	dir := StaticDirectory{"deals": members}
	enc, err := NewCachedEncrypt(dir, 5*time.Minute, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	sink := &accept{}
	chain := NewChain(sink.handler, enc)
	seal := func() Envelope {
		t.Helper()
		req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("10 tons of steel")}
		req.authenticated = true // stage under test is encrypt, not authn
		if err := chain.Execute(context.Background(), req); err != nil {
			t.Fatalf("cached encrypt: %v", err)
		}
		env, err := ParseEnvelope(req.Payload)
		if err != nil {
			t.Fatalf("ParseEnvelope: %v", err)
		}
		return env
	}

	// Two submissions share one epoch: the per-member wrap ran once.
	e1, e2 := seal(), seal()
	if e1.Epoch != 1 || e2.Epoch != 1 {
		t.Fatalf("epochs = %d, %d, want 1, 1", e1.Epoch, e2.Epoch)
	}
	for m := range members {
		if !bytes.Equal(e1.Keys[m].EphemeralPub, e2.Keys[m].EphemeralPub) ||
			!bytes.Equal(e1.Keys[m].Ciphertext, e2.Keys[m].Ciphertext) {
			t.Fatalf("member %s re-wrapped within one epoch", m)
		}
	}
	// Cached-key envelopes still open for every member and nobody else.
	for _, env := range []Envelope{e1, e2} {
		for m := range members {
			got, err := OpenEnvelope(env, m, ps[m].key)
			if err != nil || string(got) != "10 tons of steel" {
				t.Fatalf("OpenEnvelope as %s: %q, %v", m, got, err)
			}
		}
		if _, err := OpenEnvelope(env, "carol", ps["carol"].key); !errors.Is(err, ErrNotRecipient) {
			t.Fatalf("outsider open = %v, want ErrNotRecipient", err)
		}
	}

	// Epoch expiry rotates the data key.
	clock.advance(5*time.Minute + time.Second)
	if e3 := seal(); e3.Epoch != 2 {
		t.Fatalf("epoch after TTL = %d, want 2", e3.Epoch)
	}

	// Membership change rotates immediately: the joiner must not be able
	// to open pre-join traffic, nor old wraps cover the joiner.
	dir["deals"]["carol"] = ps["carol"].key.Public()
	e4 := seal()
	if e4.Epoch != 3 {
		t.Fatalf("epoch after membership change = %d, want 3", e4.Epoch)
	}
	if _, err := OpenEnvelope(e4, "carol", ps["carol"].key); err != nil {
		t.Fatalf("new member cannot open post-join envelope: %v", err)
	}

	// Explicit rotation (e.g. after a revocation) forces a fresh epoch.
	enc.Rotate("deals")
	if e5 := seal(); e5.Epoch != 4 {
		t.Fatalf("epoch after explicit rotate = %d, want 4", e5.Epoch)
	}
	if got := enc.Epoch("deals"); got != 4 {
		t.Fatalf("Epoch() = %d, want 4", got)
	}
}

// sessionChainConfig is the dual-path pipeline the session tests drive
// over transport: session-or-authn, cached envelope encryption, audit.
func sessionChainConfig(ttl, idle string) Config {
	return Config{Stages: []StageConfig{
		{Name: StageSession, Params: map[string]string{"ttl": ttl, "idle": idle}},
		{Name: StageAuthn},
		{Name: StageEncrypt, Params: map[string]string{"keyttl": "5m"}},
		{Name: StageAudit, Params: map[string]string{"observer": "gateway-op"}},
	}}
}

func TestGatewaySessionOverTransport(t *testing.T) {
	clock := newFakeClock()
	ca, ps := enrollAt(t, clock.now, "alice", "bob")
	memberKeys := map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
	}
	log := audit.NewLog()
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope, ordering.WithAuditLog(log))
	env := Env{CAKey: ca.PublicKey(), Directory: StaticDirectory{"deals": memberKeys}, Log: log, Now: clock.now}
	gw, err := NewGateway("gw", sessionChainConfig("10m", "2m"), env, orderer)
	if err != nil {
		t.Fatal(err)
	}
	gw.Bind("deals", &countingBackend{})
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		t.Fatalf("AttachTransport: %v", err)
	}

	grant, err := openSessionOverAt(t, net, "gateway", ps["alice"], clock.now())
	if err != nil {
		t.Fatalf("open session over transport: %v", err)
	}
	if mgr := gw.Sessions(); mgr == nil || mgr.Len() != 1 {
		t.Fatalf("gateway session manager not holding the session")
	}

	// Token-bound submissions carry no certificate at all.
	for i := 0; i < 3; i++ {
		req := sessionRequest(t, ps["alice"], grant.Token, "deals", []byte(fmt.Sprintf("trade-%d", i)))
		if _, err := SubmitOver(net, "alice", "gateway", req); err != nil {
			t.Fatalf("session submit %d: %v", i, err)
		}
	}
	if stats := gw.Stats(); stats.Ordered != 3 || stats.Rejected != 0 {
		t.Fatalf("stats = %+v, want 3 ordered / 0 rejected", stats)
	}

	// A forged token is rejected with the distinct no-session error.
	forged := sessionRequest(t, ps["alice"], "feedfacefeedface", "deals", []byte("x"))
	if _, err := SubmitOver(net, "alice", "gateway", forged); !errors.Is(err, ErrNoSession) {
		t.Fatalf("forged token = %v, want ErrNoSession", err)
	}

	// An expired session is rejected with the distinct expiry error.
	clock.advance(11 * time.Minute)
	expired := sessionRequest(t, ps["alice"], grant.Token, "deals", []byte("x"))
	if _, err := SubmitOver(net, "alice", "gateway", expired); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("expired session = %v, want ErrSessionExpired", err)
	}

	// Close, then the token is gone.
	grant2, err := openSessionOverAt(t, net, "gateway", ps["bob"], clock.now())
	if err != nil {
		t.Fatal(err)
	}
	if err := CloseSessionOver(net, "bob", "gateway", grant2.Token); err != nil {
		t.Fatalf("CloseSessionOver: %v", err)
	}
	closed := sessionRequest(t, ps["bob"], grant2.Token, "deals", []byte("x"))
	if _, err := SubmitOver(net, "bob", "gateway", closed); !errors.Is(err, ErrNoSession) {
		t.Fatalf("closed session = %v, want ErrNoSession", err)
	}

	// The session path leaks nothing new: the operator saw metadata and
	// identity, never transaction data.
	if log.SawAny("gateway-op", audit.ClassTxData) {
		t.Fatal("gateway operator observed transaction data on the session path")
	}
}

// flakyOrderer always fails transiently, for retry/context tests.
type flakyOrderer struct {
	mu      sync.Mutex
	submits int
}

func (f *flakyOrderer) Submit(tx ledger.Transaction) error {
	f.mu.Lock()
	f.submits++
	f.mu.Unlock()
	return fmt.Errorf("orderer unreachable: %w", transport.ErrPartitioned)
}

func (f *flakyOrderer) Subscribe(channel string, deliver ordering.DeliverFunc) {}

func (f *flakyOrderer) Operators() []string { return []string{"flaky"} }

func (f *flakyOrderer) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.submits
}

func TestAttachTransportPlumbsCallerContext(t *testing.T) {
	cfg := Config{Stages: []StageConfig{
		{Name: StageRetry, Params: map[string]string{"attempts": "3", "backoff": "0s"}},
	}}
	build := func(orderer ordering.Backend) *Gateway {
		t.Helper()
		gw, err := NewGateway("gw", cfg, Env{Sleep: func(time.Duration) {}}, orderer)
		if err != nil {
			t.Fatal(err)
		}
		return gw
	}

	// A live caller context lets the retry stage run all attempts.
	live := &flakyOrderer{}
	net := transport.New()
	if err := build(live).AttachTransport(context.Background(), net, "gw-live"); err != nil {
		t.Fatal(err)
	}
	req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("x")}
	if _, err := SubmitOver(net, "alice", "gw-live", req); !IsTransient(err) {
		t.Fatalf("live context submit = %v, want transient exhaustion", err)
	}
	if live.count() != 3 {
		t.Fatalf("attempts under live context = %d, want 3", live.count())
	}

	// A canceled caller context reaches the chain: the retry stage stops
	// after the first attempt instead of hammering the dead backend.
	canceled := &flakyOrderer{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := build(canceled).AttachTransport(ctx, net, "gw-canceled"); err != nil {
		t.Fatal(err)
	}
	if _, err := SubmitOver(net, "alice", "gw-canceled", req); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context submit = %v, want context.Canceled", err)
	}
	if canceled.count() != 1 {
		t.Fatalf("attempts under canceled context = %d, want 1", canceled.count())
	}
}

// countingBackend counts committed transactions.
type countingBackend struct {
	mu  sync.Mutex
	txs int
}

func (c *countingBackend) Name() string { return "counter" }

func (c *countingBackend) Commit(b ledger.Block) error {
	c.mu.Lock()
	c.txs += len(b.Txs)
	c.mu.Unlock()
	return nil
}

func (c *countingBackend) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.txs
}

func TestGatewayBindIdempotent(t *testing.T) {
	orderer := ordering.New("op", ordering.VisibilityFull)
	cfg := Config{Stages: []StageConfig{
		{Name: StageRateLimit, Params: map[string]string{"rate": "1000", "burst": "1000"}},
	}}
	gw, err := NewGateway("gw", cfg, Env{}, orderer)
	if err != nil {
		t.Fatal(err)
	}
	sink := &countingBackend{}
	gw.Bind("deals", sink)
	gw.Bind("deals", sink) // reconnect path: must not double-subscribe

	req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("x")}
	if err := gw.Submit(context.Background(), req); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if got := sink.count(); got != 1 {
		t.Fatalf("backend committed %d txs after double Bind, want 1", got)
	}
	if got := len(gw.Bound("deals")); got != 1 {
		t.Fatalf("Bound lists %d adapters, want 1", got)
	}
}

func TestRateLimitEvictsIdleBuckets(t *testing.T) {
	clock := newFakeClock()
	rl, err := NewRateLimit(1, 2, clock.now) // refill window: 2s
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain((&accept{}).handler, rl)
	submit := func(who string) error {
		return chain.Execute(context.Background(), &Request{Channel: "deals", Principal: who})
	}
	for i := 0; i < 100; i++ {
		if err := submit(fmt.Sprintf("principal-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := rl.Buckets(); got != 100 {
		t.Fatalf("buckets = %d, want 100", got)
	}
	// Everyone goes idle past the refill window; the next submission
	// sweeps the table down to its own bucket.
	clock.advance(3 * time.Second)
	if err := submit("principal-0"); err != nil {
		t.Fatal(err)
	}
	if got := rl.Buckets(); got != 1 {
		t.Fatalf("buckets after idle sweep = %d, want 1 (map must shrink)", got)
	}
	// Eviction must not hand out extra tokens: a refilled-then-evicted
	// bucket behaves exactly like a fresh one.
	if err := submit("principal-0"); err != nil {
		t.Fatal(err)
	}
	if err := submit("principal-0"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("post-eviction burst = %v, want ErrRateLimited", err)
	}
}

type ctxKey string

func TestBatchReleaseDetachedFromFillingContext(t *testing.T) {
	b, err := NewBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	type seen struct {
		payload byte
		ctxErr  error
		val     any
	}
	var got []seen
	terminal := func(ctx context.Context, req *Request) error {
		got = append(got, seen{req.Payload[0], ctx.Err(), ctx.Value(ctxKey("tenant"))})
		if err := ctx.Err(); err != nil {
			return err
		}
		return nil
	}
	chain := NewChain(terminal, b)

	// First request buffered and acknowledged under its own context.
	if err := chain.Execute(context.Background(), &Request{
		Channel: "c", Principal: "p", Payload: []byte{0},
	}); err != nil {
		t.Fatalf("buffered submit: %v", err)
	}
	// The filling request arrives with an already-canceled context (its
	// client gave up). The acked member must still be delivered cleanly.
	ctx := context.WithValue(context.Background(), ctxKey("tenant"), "acme")
	ctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := chain.Execute(ctx, &Request{
		Channel: "c", Principal: "p", Payload: []byte{1},
	}); err != nil {
		t.Fatalf("release under canceled filling context failed: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("terminal saw %d deliveries, want 2", len(got))
	}
	for _, s := range got {
		if s.ctxErr != nil {
			t.Fatalf("delivery of %d saw canceled context: %v", s.payload, s.ctxErr)
		}
	}
	// Values survive the detach.
	if got[1].val != "acme" {
		t.Fatalf("context value lost in detach: %v", got[1].val)
	}
}

func TestBreakerStateSeesChannelCircuits(t *testing.T) {
	clock := newFakeClock()
	br, err := NewBreaker(2, time.Second, clock.now)
	if err != nil {
		t.Fatal(err)
	}
	down := func(ctx context.Context, req *Request) error { return errors.New("down") }
	chain := NewChain(down, br)
	// Requests with no Backend share the per-channel circuit.
	for i := 0; i < 2; i++ {
		if err := chain.Execute(context.Background(), &Request{Channel: "deals", Principal: "p"}); err == nil {
			t.Fatal("failing handler reported success")
		}
	}
	if got := br.State("deals"); got != "open" {
		t.Fatalf("State(channel) = %s, want open (must resolve the channel-keyed circuit)", got)
	}
	// An explicit backend key still resolves directly.
	if got := br.State("fabric"); got != "closed" {
		t.Fatalf("State(unknown backend) = %s, want closed", got)
	}
}
