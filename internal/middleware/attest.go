package middleware

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/tee"
)

// StageAttest requires a TEE attestation on every submission: a signed
// statement that the expected enclave program processed the payload,
// verified against the manufacturer key and pinned measurement before the
// payload is sealed.
const StageAttest = "attest"

// MetaAttest is the request Meta key carrying the wire-encoded
// tee.Attestation; the stage consumes it and leaves a compact note naming
// the verified measurement.
const MetaAttest = "attestation"

// Attestation payload-binding modes: which side of the enclave execution
// the submitted payload must hash to.
const (
	BindInput  = "input"
	BindOutput = "output"
	BindOff    = "off"
)

// Errors returned by the attest stage.
var (
	// ErrAttestationRequired is returned when a submission carries no
	// attestation.
	ErrAttestationRequired = errors.New("middleware: attest: submission carries no attestation")
	// ErrAttestationRejected is returned when a carried attestation fails
	// to verify or does not cover the submitted payload.
	ErrAttestationRejected = errors.New("middleware: attest: attestation rejected")
)

// AttestationPolicy pins what the attest stage trusts: the TEE
// manufacturer's verification key (the root of the endorsement chain) and
// the measurement of the one program whose attestations are acceptable.
type AttestationPolicy struct {
	Manufacturer dcrypto.PublicKey
	Measurement  [32]byte
}

// Attest verifies TEE attestations on submissions (Env.Attestation is the
// trust policy). With input (default) or output binding, the attestation
// must additionally cover the submitted payload — a valid quote for some
// other data is rejected, so payloads cannot be swapped after enclave
// processing.
type Attest struct {
	policy AttestationPolicy
	bind   string
}

// NewAttestTEE creates the stage from a trust policy and binding mode.
func NewAttestTEE(policy AttestationPolicy, bind string) (*Attest, error) {
	if policy.Manufacturer.IsZero() {
		return nil, errors.New("middleware: attest needs the manufacturer key (Env.Attestation)")
	}
	switch bind {
	case BindInput, BindOutput, BindOff:
	default:
		return nil, fmt.Errorf("middleware: attest bind must be %s, %s, or %s, got %q", BindInput, BindOutput, BindOff, bind)
	}
	return &Attest{policy: policy, bind: bind}, nil
}

// Name implements Stage.
func (a *Attest) Name() string { return StageAttest }

// Handle implements Stage.
func (a *Attest) Handle(ctx context.Context, req *Request, next Handler) error {
	blob, ok := req.Meta[MetaAttest]
	if !ok || blob == "" {
		return fmt.Errorf("%w (channel %s)", ErrAttestationRequired, req.Channel)
	}
	if len(blob) > maxProofWireBytes {
		return fmt.Errorf("%w: attestation exceeds %d bytes", ErrAttestationRejected, maxProofWireBytes)
	}
	var att tee.Attestation
	if err := json.Unmarshal([]byte(blob), &att); err != nil {
		return fmt.Errorf("%w: %v", ErrAttestationRejected, err)
	}
	if err := tee.VerifyAttestation(att, a.policy.Manufacturer, a.policy.Measurement); err != nil {
		return fmt.Errorf("%w: %v", ErrAttestationRejected, err)
	}
	switch a.bind {
	case BindInput:
		if att.InputHash != dcrypto.Hash(req.Payload) {
			return fmt.Errorf("%w: attestation does not cover this payload (input binding)", ErrAttestationRejected)
		}
	case BindOutput:
		if att.OutputHash != dcrypto.Hash(req.Payload) {
			return fmt.Errorf("%w: attestation does not cover this payload (output binding)", ErrAttestationRejected)
		}
	}
	req.Meta[MetaAttest] = fmt.Sprintf("tee/%x", att.Measurement[:8])
	return next(ctx, req)
}

// AttachAttestation is the client-side counterpart of the attest stage: it
// attaches a wire-encoded attestation (obtained from an enclave Execute
// call) to the request.
func AttachAttestation(req *Request, att tee.Attestation) error {
	blob, err := json.Marshal(att)
	if err != nil {
		return err
	}
	if req.Meta == nil {
		req.Meta = make(map[string]string, 1)
	}
	req.Meta[MetaAttest] = string(blob)
	return nil
}

func init() {
	mustRegisterStage(stageDef{
		name: StageAttest,
		desc: "require a TEE attestation covering the submission (manufacturer + measurement pinned)",
		params: []paramSpec{
			{"mode", `attestation scheme, only "tee"`},
			{"bind", "payload binding: input|output|off (default input)"},
		},
		before: []orderRule{
			{StageEncrypt, "attestations bind to the plaintext payload, which sealing hides"},
		},
		build: func(p *params, sc StageConfig, env Env) (Stage, error) {
			if mode := p.str("mode", "tee"); mode != "tee" {
				return nil, fmt.Errorf("unknown attest mode %q (want tee)", mode)
			}
			bind := p.enum("bind", BindInput, BindInput, BindOutput, BindOff)
			if p.err != nil {
				return nil, p.err
			}
			if env.Attestation == nil {
				return nil, errors.New("attest needs Env.Attestation (manufacturer key + expected measurement)")
			}
			return NewAttestTEE(*env.Attestation, bind)
		},
	})
}
