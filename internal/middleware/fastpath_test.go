package middleware

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/transport"
)

// --- binary codec ---

func TestWireRequestBinaryRoundtrip(t *testing.T) {
	_, ps := enroll(t, "alice")
	cert := ps["alice"].cert
	sig, err := ps["alice"].key.Sign([]byte("digest"))
	if err != nil {
		t.Fatal(err)
	}
	mac := bytes.Repeat([]byte{0x7f}, dcrypto.MACSize)
	cases := []wireRequest{
		{Channel: "deals", Principal: "alice", Payload: []byte("trade")},
		{Channel: "deals", Principal: "alice", Backend: "fabric", Payload: []byte("trade"),
			Sig: sig, Session: "tok", Meta: map[string]string{"a": "1", "b": "2"}},
		{Channel: "deals", Principal: "alice", Payload: nil, MAC: mac, Session: "tok"},
		{Channel: "deals", Principal: "alice", Payload: []byte("trade"), Cert: &cert, Sig: sig},
	}
	for i, w := range cases {
		b, err := encodeWireRequestBinary(&w)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		if !isBinaryFrame(b) {
			t.Fatalf("case %d: encoded frame not sniffed as binary", i)
		}
		got, err := decodeWireRequestBinary(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Channel != w.Channel || got.Principal != w.Principal || got.Backend != w.Backend ||
			got.Session != w.Session || !bytes.Equal(got.Payload, w.Payload) || !bytes.Equal(got.MAC, w.MAC) {
			t.Fatalf("case %d: roundtrip mismatch: %+v vs %+v", i, got, w)
		}
		if (w.Sig.R == nil) != (got.Sig.R == nil) {
			t.Fatalf("case %d: signature presence mismatch", i)
		}
		if w.Sig.R != nil && !bytes.Equal(w.Sig.Bytes(), got.Sig.Bytes()) {
			t.Fatalf("case %d: signature mismatch", i)
		}
		if (w.Cert == nil) != (got.Cert == nil) {
			t.Fatalf("case %d: cert presence mismatch", i)
		}
		if w.Cert != nil && got.Cert.Serial != w.Cert.Serial {
			t.Fatalf("case %d: cert serial mismatch", i)
		}
		if !reflect.DeepEqual(got.Meta, w.Meta) {
			t.Fatalf("case %d: meta mismatch: %v vs %v", i, got.Meta, w.Meta)
		}
	}
}

func TestEnvelopeBinaryRoundtrip(t *testing.T) {
	_, ps := enroll(t, "alice", "bob")
	members := map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
	}
	env, err := SealEnvelope("deals", []byte("secret trade"), members)
	if err != nil {
		t.Fatal(err)
	}
	env.Epoch = 7
	b, err := EncodeEnvelope(env, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	if !isBinaryFrame(b) {
		t.Fatal("binary envelope not sniffed as binary")
	}
	got, err := ParseEnvelope(b)
	if err != nil {
		t.Fatalf("ParseEnvelope(binary): %v", err)
	}
	if got.Scheme != env.Scheme || got.Channel != env.Channel || got.Epoch != env.Epoch {
		t.Fatalf("header mismatch: %+v", got)
	}
	// The decoded envelope must open like the original for every member.
	for name, p := range ps {
		pt, err := OpenEnvelope(got, name, p.key)
		if err != nil {
			t.Fatalf("open decoded envelope as %s: %v", name, err)
		}
		if !bytes.Equal(pt, []byte("secret trade")) {
			t.Fatalf("decoded payload mismatch for %s", name)
		}
	}
	// JSON stays the default and still parses.
	jb, err := EncodeEnvelope(env, CodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	if isBinaryFrame(jb) {
		t.Fatal("JSON envelope sniffed as binary")
	}
	if _, err := ParseEnvelope(jb); err != nil {
		t.Fatalf("ParseEnvelope(json): %v", err)
	}
	// Binary encoding is deterministic (sorted recipient order).
	b2, _ := EncodeEnvelope(env, CodecBinary)
	if !bytes.Equal(b, b2) {
		t.Fatal("binary envelope encoding is not deterministic")
	}
}

func TestBinaryFrameRejectsMalformed(t *testing.T) {
	good, err := encodeWireRequestBinary(&wireRequest{Channel: "deals", Principal: "alice", Payload: []byte("p")})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"magic only":      {binaryMagic},
		"wrong kind":      {binaryMagic, 0x7f},
		"truncated":       good[:len(good)-2],
		"trailing bytes":  append(append([]byte{}, good...), 0x01),
		"oversized field": {binaryMagic, binaryKindRequest, 0xff, 0xff, 0xff, 0x01},
		"huge meta count": append(append([]byte{}, good[:len(good)-1]...), 0xff, 0xff, 0x03),
		"envelope as req": {binaryMagic, binaryKindEnvelope, 0x00},
		"bad sig length":  nil, // built below
		"bad mac length":  nil, // built below
		"huge key count env": append([]byte{binaryMagic, binaryKindEnvelope},
			0x01, 's', 0x01, 'c', 0x00, 0x00, 0xff, 0xff, 0x03),
	}
	// Hand-assemble a frame with a 3-byte "signature".
	withSig := []byte{binaryMagic, binaryKindRequest,
		0x01, 'c', 0x01, 'p', 0x00, 0x00, 0x00, 0x03, 0xaa, 0xbb, 0xcc, 0x00, 0x00, 0x00}
	cases["bad sig length"] = withSig
	withMAC := []byte{binaryMagic, binaryKindRequest,
		0x01, 'c', 0x01, 'p', 0x00, 0x00, 0x00, 0x00, 0x02, 0xaa, 0xbb, 0x00, 0x00}
	cases["bad mac length"] = withMAC
	for name, b := range cases {
		if name == "envelope as req" || name == "huge key count env" {
			if _, err := decodeEnvelopeBinary(b); err == nil && name == "huge key count env" {
				t.Fatalf("%s: accepted", name)
			}
			continue
		}
		if _, err := decodeWireRequestBinary(b); err == nil {
			t.Fatalf("%s: malformed frame accepted", name)
		}
	}
	if _, err := ParseEnvelope([]byte{binaryMagic, binaryKindEnvelope}); err == nil {
		t.Fatal("truncated binary envelope accepted")
	}
}

func TestCodecConfigValidation(t *testing.T) {
	_, err := Config{
		Stages: []StageConfig{{Name: StageRateLimit}},
		Codec:  "protobuf",
	}.Build(Env{}, nil)
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown codec accepted: %v", err)
	}
	for _, codec := range []string{"", CodecJSON, CodecBinary} {
		if _, err := (Config{
			Stages: []StageConfig{{Name: StageRateLimit}},
			Codec:  codec,
		}).Build(Env{}, nil); err != nil {
			t.Fatalf("codec %q rejected: %v", codec, err)
		}
	}
}

// --- MAC request authentication ---

// fastpathGateway builds a session+encrypt gateway with the given reqauth
// and codec over the transport substrate, returning the network and the
// per-principal grants.
func fastpathGateway(t testing.TB, reqauth, codec string, names ...string) (*Gateway, *transport.Network, map[string]*principal, map[string]SessionGrant) {
	t.Helper()
	ca, ps := enroll(t, names...)
	members := make(map[string]dcrypto.PublicKey, len(ps))
	for name, p := range ps {
		members[name] = p.key.Public()
	}
	dir := NewSyncDirectory()
	dir.SetChannel("deals", members)
	dir.SetChannel("loans", members)
	cfg := Config{
		Stages: []StageConfig{
			{Name: StageSession, Params: map[string]string{"ttl": "1h", "idle": "1h", "reqauth": reqauth}},
			{Name: StageAuthn},
			{Name: StageEncrypt, Params: map[string]string{"keyttl": "1h"}},
		},
		Codec: codec,
	}
	env := Env{CAKey: ca.PublicKey(), Directory: dir, Log: audit.NewLog()}
	gw, err := NewGateway("fastpath-gw", cfg, env, ordering.New("op", ordering.VisibilityEnvelope))
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		t.Fatalf("AttachTransport: %v", err)
	}
	// The orderer needs at least one subscriber per channel to accept
	// submissions; tests asserting delivery bind their own recorders too.
	for _, ch := range []string{"deals", "loans"} {
		gw.Bind(ch, backendFunc{name: "sink", commit: func(ledger.Block) error { return nil }})
	}
	grants := make(map[string]SessionGrant, len(ps))
	for name, p := range ps {
		grant, err := OpenSessionOverCodec(net, name, "gateway", p.cert, p.key, codec)
		if err != nil {
			t.Fatalf("open session for %s: %v", name, err)
		}
		grants[name] = grant
	}
	return gw, net, ps, grants
}

func TestSessionMACAuthenticates(t *testing.T) {
	gw, net, _, grants := fastpathGateway(t, "mac", CodecJSON, "alice")
	grant := grants["alice"]
	if len(grant.MacKey) != dcrypto.MACKeySize {
		t.Fatalf("mac-mode grant carries no MAC key: %+v", grant)
	}
	req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("trade"), SessionToken: grant.Token}
	MACRequest(req, grant.MacKey)
	if req.Sig.R != nil {
		t.Fatal("MACRequest must not sign")
	}
	if _, err := SubmitOver(net, "alice", "gateway", req); err != nil {
		t.Fatalf("MAC-authenticated submission rejected: %v", err)
	}
	if stats := gw.Stats(); stats.Submitted != 1 {
		t.Fatalf("submitted = %d, want 1", stats.Submitted)
	}
}

func TestSessionMACRejectsTampering(t *testing.T) {
	_, net, _, grants := fastpathGateway(t, "mac", CodecJSON, "alice")
	grant := grants["alice"]

	// Tampered payload after MACing.
	req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("legit"), SessionToken: grant.Token}
	MACRequest(req, grant.MacKey)
	req.Payload = []byte("tampered")
	if _, err := SubmitOver(net, "alice", "gateway", req); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("tampered MAC submission: got %v, want ErrBadMAC", err)
	}

	// MAC under the wrong key.
	wrongKey := bytes.Repeat([]byte{0x42}, dcrypto.MACKeySize)
	req2 := &Request{Channel: "deals", Principal: "alice", Payload: []byte("legit"), SessionToken: grant.Token}
	MACRequest(req2, wrongKey)
	if _, err := SubmitOver(net, "alice", "gateway", req2); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("wrong-key MAC submission: got %v, want ErrBadMAC", err)
	}

	// Garbage MAC of the right length.
	req3 := &Request{Channel: "deals", Principal: "alice", Payload: []byte("legit"), SessionToken: grant.Token}
	req3.MAC = bytes.Repeat([]byte{0x00}, dcrypto.MACSize)
	if _, err := SubmitOver(net, "alice", "gateway", req3); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("garbage MAC submission: got %v, want ErrBadMAC", err)
	}
}

func TestSessionMACSigFallback(t *testing.T) {
	_, net, ps, grants := fastpathGateway(t, "mac", CodecJSON, "alice")
	// A signature-path client on a MAC gateway keeps working (first
	// contact, or a client that ignored the grant key).
	req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("trade"), SessionToken: grants["alice"].Token}
	if err := SignRequest(req, ps["alice"].key); err != nil {
		t.Fatal(err)
	}
	if _, err := SubmitOver(net, "alice", "gateway", req); err != nil {
		t.Fatalf("signature fallback on mac gateway rejected: %v", err)
	}
}

func TestSessionSigModeGrantsNoMACKey(t *testing.T) {
	_, net, _, grants := fastpathGateway(t, "sig", CodecJSON, "alice")
	grant := grants["alice"]
	if grant.MacKey != nil {
		t.Fatalf("sig-mode grant carries a MAC key")
	}
	// A MAC-bearing request at a signature-only gateway is rejected, not
	// silently accepted.
	req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("trade"), SessionToken: grant.Token}
	req.MAC = bytes.Repeat([]byte{0x01}, dcrypto.MACSize)
	if _, err := SubmitOver(net, "alice", "gateway", req); !errors.Is(err, ErrBadMAC) {
		t.Fatalf("MAC at sig gateway: got %v, want ErrBadMAC", err)
	}
}

func TestSessionMACKeyBoundPerSession(t *testing.T) {
	ca, ps := enroll(t, "alice")
	mgr, err := NewSessionManager(ca.PublicKey(), time.Hour, time.Hour, nil, WithRequestAuth(AuthMAC))
	if err != nil {
		t.Fatal(err)
	}
	a := openSession(t, mgr, ps["alice"])
	b := openSession(t, mgr, ps["alice"])
	if bytes.Equal(a.MacKey, b.MacKey) {
		t.Fatal("two sessions share a MAC key")
	}
	// One session's key cannot authenticate against the other's token.
	req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("p"), SessionToken: b.Token}
	MACRequest(req, a.MacKey)
	stage, err := NewSession(mgr)
	if err != nil {
		t.Fatal(err)
	}
	err = stage.Handle(context.Background(), req, func(context.Context, *Request) error { return nil })
	if !errors.Is(err, ErrBadMAC) {
		t.Fatalf("cross-session MAC: got %v, want ErrBadMAC", err)
	}
}

func TestRevocationKillsMACSession(t *testing.T) {
	ca, ps := enroll(t, "alice")
	mgr, err := NewSessionManager(ca.PublicKey(), time.Hour, time.Hour, nil,
		WithRequestAuth(AuthMAC),
		WithRevocationChecks(ca, RevokeCheckResolve, 0))
	if err != nil {
		t.Fatal(err)
	}
	grant := openSession(t, mgr, ps["alice"])
	stage, err := NewSession(mgr)
	if err != nil {
		t.Fatal(err)
	}
	next := func(context.Context, *Request) error { return nil }

	req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("p"), SessionToken: grant.Token}
	MACRequest(req, grant.MacKey)
	if err := stage.Handle(context.Background(), req, next); err != nil {
		t.Fatalf("pre-revocation MAC request rejected: %v", err)
	}

	ca.Revoke(ps["alice"].cert.Serial)

	// A perfectly valid MAC under the granted key is now refused: the
	// session (and the server's copy of the key) died with the cert.
	late := &Request{Channel: "deals", Principal: "alice", Payload: []byte("late"), SessionToken: grant.Token}
	MACRequest(late, grant.MacKey)
	if err := stage.Handle(context.Background(), late, next); !errors.Is(err, ErrSessionRevoked) {
		t.Fatalf("post-revocation MAC request: got %v, want ErrSessionRevoked", err)
	}
}

// --- codec negotiation and binary submissions ---

func TestCodecNegotiation(t *testing.T) {
	// A binary gateway offers binary to sessions that ask for it.
	_, _, _, grants := fastpathGateway(t, "mac", CodecBinary, "alice")
	if got := grants["alice"].Codec; got != CodecBinary {
		t.Fatalf("binary gateway negotiated %q, want %q", got, CodecBinary)
	}
	// A JSON gateway downgrades a binary request to JSON.
	_, net, ps, _ := fastpathGateway(t, "mac", CodecJSON, "bob")
	grant, err := OpenSessionOverCodec(net, "bob", "gateway", ps["bob"].cert, ps["bob"].key, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	if grant.Codec != CodecJSON {
		t.Fatalf("json gateway negotiated %q, want %q", grant.Codec, CodecJSON)
	}
	// And rejects binary frames outright.
	req := &Request{Channel: "deals", Principal: "bob", Payload: []byte("p"), SessionToken: grant.Token}
	MACRequest(req, grant.MacKey)
	if _, err := SubmitOverCodec(net, "bob", "gateway", req, CodecBinary); err == nil {
		t.Fatal("binary frame accepted by json gateway")
	}
}

func TestBinarySubmissionEndToEnd(t *testing.T) {
	gw, net, ps, grants := fastpathGateway(t, "mac", CodecBinary, "alice", "bob")
	var delivered []ledger.Transaction
	var mu sync.Mutex
	sink := backendFunc{name: "recorder", commit: func(b ledger.Block) error {
		mu.Lock()
		delivered = append(delivered, b.Txs...)
		mu.Unlock()
		return nil
	}}
	gw.Bind("deals", sink)

	grant := grants["alice"]
	req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("binary trade"), SessionToken: grant.Token}
	MACRequest(req, grant.MacKey)
	if _, err := SubmitOverCodec(net, "alice", "gateway", req, grant.Codec); err != nil {
		t.Fatalf("binary submission rejected: %v", err)
	}
	// JSON stays accepted on the same gateway (mixed populations).
	jreq := &Request{Channel: "deals", Principal: "bob", Payload: []byte("json trade"), SessionToken: grants["bob"].Token}
	MACRequest(jreq, grants["bob"].MacKey)
	if _, err := SubmitOver(net, "bob", "gateway", jreq); err != nil {
		t.Fatalf("json submission on binary gateway rejected: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != 2 {
		t.Fatalf("delivered %d txs, want 2", len(delivered))
	}
	// Envelopes committed by a binary gateway are binary-framed and open
	// for members regardless of framing.
	for i, tx := range delivered {
		env, err := ParseEnvelope(tx.Payload)
		if err != nil {
			t.Fatalf("tx %d: parse envelope: %v", i, err)
		}
		pt, err := OpenEnvelope(env, "alice", ps["alice"].key)
		if err != nil {
			t.Fatalf("tx %d: open envelope: %v", i, err)
		}
		if !bytes.Contains(pt, []byte("trade")) {
			t.Fatalf("tx %d: unexpected payload %q", i, pt)
		}
		if !isBinaryFrame(tx.Payload) {
			t.Fatalf("tx %d: binary gateway committed a JSON envelope", i)
		}
	}
}

// backendFunc adapts a function to the Backend interface.
type backendFunc struct {
	name   string
	commit func(ledger.Block) error
}

func (b backendFunc) Name() string                  { return b.name }
func (b backendFunc) Commit(blk ledger.Block) error { return b.commit(blk) }

// --- SyncDirectory and fingerprint cache ---

func TestSyncDirectoryMembershipRotatesEpoch(t *testing.T) {
	ca, ps := enroll(t, "alice", "bob", "carol")
	dir := NewSyncDirectory()
	dir.SetChannel("deals", map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
	})
	enc, err := NewCachedEncrypt(dir, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(nil, NewAuthn(ca.PublicKey(), nil), enc)
	submit := func(p *principal) *Request {
		req := signedRequest(t, p, "deals", []byte("trade"))
		if err := chain.Execute(context.Background(), req); err != nil {
			t.Fatalf("submit as %s: %v", p.name, err)
		}
		return req
	}
	submit(ps["alice"])
	if got := enc.Epoch("deals"); got != 1 {
		t.Fatalf("epoch after first seal = %d, want 1", got)
	}
	// Steady state: the fingerprint cache keeps the epoch pinned.
	for i := 0; i < 5; i++ {
		submit(ps["alice"])
	}
	if got := enc.Epoch("deals"); got != 1 {
		t.Fatalf("epoch after steady-state seals = %d, want 1", got)
	}
	// Membership change through the directory bumps the generation; the
	// next seal must rotate and wrap to carol.
	dir.SetChannel("deals", map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
		"carol": ps["carol"].key.Public(),
	})
	req := submit(ps["alice"])
	if got := enc.Epoch("deals"); got != 2 {
		t.Fatalf("epoch after membership change = %d, want 2", got)
	}
	env, err := ParseEnvelope(req.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenEnvelope(env, "carol", ps["carol"].key); err != nil {
		t.Fatalf("joiner cannot open post-join envelope: %v", err)
	}
}

func TestSyncDirectoryRevocationStillExcludes(t *testing.T) {
	ca, ps := enroll(t, "alice", "bob")
	dir := NewSyncDirectory()
	dir.SetChannel("deals", map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
	})
	enc, err := NewCachedEncrypt(dir, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(nil, NewAuthn(ca.PublicKey(), nil), enc)
	req := signedRequest(t, ps["alice"], "deals", []byte("trade"))
	if err := chain.Execute(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	enc.RevokeMember("bob")
	req2 := signedRequest(t, ps["alice"], "deals", []byte("post-revocation"))
	if err := chain.Execute(context.Background(), req2); err != nil {
		t.Fatal(err)
	}
	env, err := ParseEnvelope(req2.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenEnvelope(env, "bob", ps["bob"].key); !errors.Is(err, ErrNotRecipient) {
		t.Fatalf("revoked member still a recipient (err %v) despite fingerprint cache", err)
	}
}

// racyDirectory wraps a SyncDirectory and fires a mutation from inside the
// first MemberKeys call — the worst interleaving for the fingerprint
// cache: a membership change landing between the generation read and the
// member fetch of one request.
type racyDirectory struct {
	*SyncDirectory
	once   sync.Once
	mutate func()
}

func (d *racyDirectory) MemberKeys(channel string) (map[string]dcrypto.PublicKey, error) {
	members, err := d.SyncDirectory.MemberKeys(channel)
	d.once.Do(d.mutate)
	return members, err
}

// TestFingerprintCacheNotPoisonedByRacingUpdate pins the generation-read
// ordering: when a directory update lands mid-request (after the
// generation read, after the member fetch), the racing request may still
// seal to the set it fetched, but the cache must NOT keep advertising that
// stale set under the new generation — the very next request must re-key
// to the updated membership.
func TestFingerprintCacheNotPoisonedByRacingUpdate(t *testing.T) {
	ca, ps := enroll(t, "alice", "bob")
	base := NewSyncDirectory()
	base.SetChannel("deals", map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
	})
	dir := &racyDirectory{SyncDirectory: base}
	dir.mutate = func() {
		base.SetChannel("deals", map[string]dcrypto.PublicKey{
			"alice": ps["alice"].key.Public(), // bob removed mid-request
		})
	}
	enc, err := NewCachedEncrypt(dir, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	chain := NewChain(nil, NewAuthn(ca.PublicKey(), nil), enc)
	// Request 1 races the membership change; whichever snapshot it sealed
	// to, request 2 runs entirely after the update and must exclude bob.
	for i := 0; i < 2; i++ {
		req := signedRequest(t, ps["alice"], "deals", []byte("trade"))
		if err := chain.Execute(context.Background(), req); err != nil {
			t.Fatalf("request %d: %v", i+1, err)
		}
		if i == 0 {
			continue
		}
		env, err := ParseEnvelope(req.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if _, wrapped := env.Keys["bob"]; wrapped {
			t.Fatal("request after membership change still wraps the removed member: fingerprint cache poisoned by racing update")
		}
	}
}

// --- concurrency matrix ---

// TestFastPathConcurrencyMatrix drives parallel submitters through the
// full gateway over the transport substrate across every reqauth × codec
// combination, then asserts (a) every submission was accepted and counted,
// (b) both bound backends saw identical per-channel delivery orders, and
// (c) the per-channel sequences are a merge preserving each submitter's
// own submission order. Run under -race this also shakes the striped
// session table, the fingerprint cache, and the pooled hashing.
func TestFastPathConcurrencyMatrix(t *testing.T) {
	const (
		submitters   = 4
		perSubmitter = 25
	)
	names := make([]string, submitters)
	for i := range names {
		names[i] = fmt.Sprintf("org%d", i)
	}
	channels := []string{"deals", "loans"}
	for _, reqauth := range []string{"sig", "mac"} {
		for _, codec := range []string{CodecJSON, CodecBinary} {
			t.Run(fmt.Sprintf("reqauth=%s/codec=%s", reqauth, codec), func(t *testing.T) {
				gw, net, ps, grants := fastpathGateway(t, reqauth, codec, names...)
				type record struct {
					mu   sync.Mutex
					seen map[string][]string // channel -> request ids in delivery order
				}
				recs := [2]*record{{seen: map[string][]string{}}, {seen: map[string][]string{}}}
				for i, rec := range recs {
					rec := rec
					for _, ch := range channels {
						gw.Bind(ch, backendFunc{name: fmt.Sprintf("rec%d", i), commit: func(b ledger.Block) error {
							rec.mu.Lock()
							for _, tx := range b.Txs {
								rec.seen[tx.Channel] = append(rec.seen[tx.Channel], tx.Meta["reqid"])
							}
							rec.mu.Unlock()
							return nil
						}})
					}
				}
				var wg sync.WaitGroup
				errs := make(chan error, submitters)
				for _, name := range names {
					wg.Add(1)
					go func(name string) {
						defer wg.Done()
						p, grant := ps[name], grants[name]
						for i := 0; i < perSubmitter; i++ {
							req := &Request{
								Channel:      channels[i%len(channels)],
								Principal:    name,
								Payload:      []byte(fmt.Sprintf("%s-%d", name, i)),
								SessionToken: grant.Token,
								Meta:         map[string]string{"reqid": fmt.Sprintf("%s-%d", name, i)},
							}
							if reqauth == "mac" {
								MACRequest(req, grant.MacKey)
							} else if err := SignRequest(req, p.key); err != nil {
								errs <- err
								return
							}
							if _, err := SubmitOverCodec(net, name, "gateway", req, grant.Codec); err != nil {
								errs <- fmt.Errorf("%s submit %d: %w", name, i, err)
								return
							}
						}
					}(name)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Fatal(err)
				}
				total := uint64(submitters * perSubmitter)
				stats := gw.Stats()
				if stats.Submitted != total || stats.Ordered != total || stats.Rejected != 0 {
					t.Fatalf("stats = submitted %d ordered %d rejected %d, want %d/%d/0",
						stats.Submitted, stats.Ordered, stats.Rejected, total, total)
				}
				// Both backends saw the same per-channel order.
				for _, ch := range channels {
					if !reflect.DeepEqual(recs[0].seen[ch], recs[1].seen[ch]) {
						t.Fatalf("channel %s: backends disagree on delivery order", ch)
					}
				}
				// The merged order preserves each submitter's own sequence,
				// and nothing was lost or duplicated.
				delivered := 0
				for _, ch := range channels {
					prev := make(map[int]int)
					for _, id := range recs[0].seen[ch] {
						var orgIdx, seq int
						if _, err := fmt.Sscanf(id, "org%d-%d", &orgIdx, &seq); err != nil {
							t.Fatalf("unparseable reqid %q: %v", id, err)
						}
						if last, ok := prev[orgIdx]; ok && seq <= last {
							t.Fatalf("channel %s: submitter org%d delivered out of order (%d after %d)", ch, orgIdx, seq, last)
						}
						prev[orgIdx] = seq
						delivered++
					}
				}
				if delivered != int(total) {
					t.Fatalf("delivered %d txs across channels, want %d", delivered, total)
				}
			})
		}
	}
}
