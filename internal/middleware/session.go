package middleware

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/pki"
)

// Session errors. They are distinct so clients can tell a token that never
// existed (or was evicted) from one that aged out, and either from a
// request whose per-request signature failed.
var (
	// ErrNoSession is returned for a token the manager does not hold:
	// forged, never issued, closed, or already evicted.
	ErrNoSession = errors.New("middleware: unknown session token")
	// ErrSessionExpired is returned when a held session has passed its TTL
	// or its idle window; the session is evicted as a side effect.
	ErrSessionExpired = errors.New("middleware: session expired")
	// ErrStaleHello is returned for a handshake issued outside the
	// freshness window, closing the long-horizon replay surface.
	ErrStaleHello = errors.New("middleware: session hello outside freshness window")
	// ErrReplayedHello is returned when a handshake nonce is seen twice
	// within the freshness window: a recorded hello cannot mint a second
	// token.
	ErrReplayedHello = errors.New("middleware: session hello replayed")
)

// SessionHello is the signed handshake a client sends to open a session:
// the full Authn verification (certificate chain + signature) is paid once
// here instead of on every submission. The signature covers the nonce and
// issue time, so a recorded hello cannot be replayed: the manager rejects
// stale issue times outright and remembers nonces within the freshness
// window.
type SessionHello struct {
	Principal string            `json:"principal"`
	Nonce     []byte            `json:"nonce"`
	IssuedAt  time.Time         `json:"issuedAt"`
	Cert      pki.Certificate   `json:"cert"`
	Sig       dcrypto.Signature `json:"sig"`
}

// SessionGrant is the manager's reply to an accepted handshake.
type SessionGrant struct {
	Token     string    `json:"token"`
	Principal string    `json:"principal"`
	ExpiresAt time.Time `json:"expiresAt"`
}

// helloDigest is the canonical signed content of a handshake.
func helloDigest(principal string, nonce []byte, issuedAt time.Time) [32]byte {
	return dcrypto.HashConcat(
		[]byte("middleware/session/hello/v1"),
		[]byte(principal),
		nonce,
		[]byte(issuedAt.UTC().Format(time.RFC3339Nano)),
	)
}

// helloFreshness bounds how old (or future-dated, for clock skew) a
// handshake may be; nonces are remembered for this window, so a recorded
// hello can never mint a second token.
const helloFreshness = 2 * time.Minute

// NewSessionHello builds and signs a handshake for a principal, stamped
// with the wall clock.
func NewSessionHello(principal string, cert pki.Certificate, key *dcrypto.PrivateKey) (SessionHello, error) {
	return NewSessionHelloAt(principal, cert, key, time.Now())
}

// NewSessionHelloAt builds and signs a handshake with an explicit issue
// time, for callers running on an injected clock.
func NewSessionHelloAt(principal string, cert pki.Certificate, key *dcrypto.PrivateKey, at time.Time) (SessionHello, error) {
	nonce, err := dcrypto.RandomBytes(16)
	if err != nil {
		return SessionHello{}, fmt.Errorf("middleware: hello nonce: %w", err)
	}
	d := helloDigest(principal, nonce, at)
	sig, err := key.Sign(d[:])
	if err != nil {
		return SessionHello{}, fmt.Errorf("middleware: sign hello: %w", err)
	}
	return SessionHello{Principal: principal, Nonce: nonce, IssuedAt: at, Cert: cert, Sig: sig}, nil
}

// sessionTokenBytes is the entropy of a session token (hex-encoded on the
// wire), far beyond guessability.
const sessionTokenBytes = 32

// session is one established client session: the verified principal and
// its certified key, cached so subsequent requests skip PKI verification.
type session struct {
	principal string
	key       dcrypto.PublicKey
	openedAt  time.Time
	lastUsed  time.Time
	expiresAt time.Time
}

// SessionManager establishes and resolves gateway sessions. Opening a
// session performs the full certificate verification the authn stage would;
// afterwards, requests carrying the session token are bound to the cached
// verified principal by a per-request signature over the request digest.
// Sessions die at their TTL, or earlier when idle longer than the idle
// window. Safe for concurrent use.
type SessionManager struct {
	caKey dcrypto.PublicKey
	ttl   time.Duration
	idle  time.Duration
	now   func() time.Time

	mu       sync.Mutex
	sessions map[string]*session
	// seenNonces remembers handshake nonces until their freshness window
	// closes, so a recorded hello cannot be replayed to mint a second
	// token. Keyed by nonce hex, valued by forget-after time.
	seenNonces map[string]time.Time
}

// NewSessionManager creates a manager pinned to the consortium CA key.
// ttl bounds total session lifetime; idle evicts sessions unused that long.
func NewSessionManager(caKey dcrypto.PublicKey, ttl, idle time.Duration, now func() time.Time) (*SessionManager, error) {
	if caKey.IsZero() {
		return nil, errors.New("middleware: session manager needs the CA key")
	}
	if ttl <= 0 || idle <= 0 {
		return nil, fmt.Errorf("middleware: session ttl and idle must be positive, got ttl=%v idle=%v", ttl, idle)
	}
	if now == nil {
		now = time.Now
	}
	return &SessionManager{
		caKey:      caKey,
		ttl:        ttl,
		idle:       idle,
		now:        now,
		sessions:   make(map[string]*session),
		seenNonces: make(map[string]time.Time),
	}, nil
}

// Open verifies the handshake exactly as the authn stage verifies a
// request — certificate chains to the CA, identity matches, signature
// verifies against the certified key — and issues an unguessable token.
func (m *SessionManager) Open(hello SessionHello) (SessionGrant, error) {
	now := m.now()
	if hello.IssuedAt.Before(now.Add(-helloFreshness)) || hello.IssuedAt.After(now.Add(helloFreshness)) {
		return SessionGrant{}, fmt.Errorf("%w: issued %v, now %v", ErrStaleHello, hello.IssuedAt, now)
	}
	if err := pki.VerifyCertificate(hello.Cert, m.caKey, now); err != nil {
		return SessionGrant{}, fmt.Errorf("session open %s: %w", hello.Principal, err)
	}
	if hello.Cert.Identity != hello.Principal {
		return SessionGrant{}, fmt.Errorf("%w: cert for %q, hello by %q",
			ErrIdentityMismatch, hello.Cert.Identity, hello.Principal)
	}
	key, err := hello.Cert.Key()
	if err != nil {
		return SessionGrant{}, fmt.Errorf("session open %s: %w", hello.Principal, err)
	}
	d := helloDigest(hello.Principal, hello.Nonce, hello.IssuedAt)
	if err := key.Verify(d[:], hello.Sig); err != nil {
		return SessionGrant{}, fmt.Errorf("%w: session hello by %s", ErrBadSignature, hello.Principal)
	}
	raw, err := dcrypto.RandomBytes(sessionTokenBytes)
	if err != nil {
		return SessionGrant{}, fmt.Errorf("session token: %w", err)
	}
	token := hex.EncodeToString(raw)
	expires := now.Add(m.ttl)

	// A verified hello is consumed: its nonce is remembered until every
	// copy of it has gone stale, so replaying it cannot mint a token.
	nonceKey := hex.EncodeToString(hello.Nonce)
	m.mu.Lock()
	m.sweepLocked(now)
	if _, seen := m.seenNonces[nonceKey]; seen {
		m.mu.Unlock()
		return SessionGrant{}, fmt.Errorf("%w: principal %s", ErrReplayedHello, hello.Principal)
	}
	m.seenNonces[nonceKey] = hello.IssuedAt.Add(2 * helloFreshness)
	m.sessions[token] = &session{
		principal: hello.Principal,
		key:       key,
		openedAt:  now,
		lastUsed:  now,
		expiresAt: expires,
	}
	m.mu.Unlock()
	return SessionGrant{Token: token, Principal: hello.Principal, ExpiresAt: expires}, nil
}

// Close ends a session. Closing an unknown token is a no-op: the token may
// already have been evicted.
func (m *SessionManager) Close(token string) {
	m.mu.Lock()
	delete(m.sessions, token)
	m.mu.Unlock()
}

// resolve returns the verified principal and key bound to a token,
// touching its idle clock. Expired or idle sessions are evicted here.
func (m *SessionManager) resolve(token string) (string, dcrypto.PublicKey, error) {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[token]
	if !ok {
		return "", dcrypto.PublicKey{}, ErrNoSession
	}
	if now.After(s.expiresAt) || now.Sub(s.lastUsed) > m.idle {
		delete(m.sessions, token)
		return "", dcrypto.PublicKey{}, ErrSessionExpired
	}
	s.lastUsed = now
	return s.principal, s.key, nil
}

// sweepLocked evicts every session past its TTL or idle window, and every
// remembered nonce past its forget-after time. Called with the lock held,
// on each Open, so an abandoned client population cannot grow either
// table without bound.
func (m *SessionManager) sweepLocked(now time.Time) {
	for token, s := range m.sessions {
		if now.After(s.expiresAt) || now.Sub(s.lastUsed) > m.idle {
			delete(m.sessions, token)
		}
	}
	for nonce, forgetAfter := range m.seenNonces {
		if now.After(forgetAfter) {
			delete(m.seenNonces, nonce)
		}
	}
}

// Len reports the number of live sessions (including any not yet swept).
func (m *SessionManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Session is the session-aware authn stage. A request carrying a token is
// bound to its session's cached verified principal by a per-request
// signature over the request digest — no certificate verification on the
// hot path. A request without a token passes through untouched for the
// full authn stage downstream, so one chain serves both kinds of traffic.
type Session struct {
	mgr *SessionManager
}

// NewSession creates the session stage over an established manager.
func NewSession(mgr *SessionManager) (*Session, error) {
	if mgr == nil {
		return nil, errors.New("middleware: session stage needs a manager")
	}
	return &Session{mgr: mgr}, nil
}

// Name implements Stage.
func (s *Session) Name() string { return StageSession }

// Manager returns the stage's session manager, the handle the gateway
// serves session.open / session.close through.
func (s *Session) Manager() *SessionManager { return s.mgr }

// Handle implements Stage.
func (s *Session) Handle(ctx context.Context, req *Request, next Handler) error {
	if req.SessionToken == "" {
		return next(ctx, req)
	}
	principal, key, err := s.mgr.resolve(req.SessionToken)
	if err != nil {
		return fmt.Errorf("session %s: %w", req.Principal, err)
	}
	if principal != req.Principal {
		return fmt.Errorf("%w: session for %q, request by %q",
			ErrIdentityMismatch, principal, req.Principal)
	}
	d := req.Digest()
	if err := key.Verify(d[:], req.Sig); err != nil {
		return fmt.Errorf("%w: session principal %s", ErrBadSignature, req.Principal)
	}
	req.authenticated = true
	return next(ctx, req)
}
