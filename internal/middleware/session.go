package middleware

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/telemetry"
)

// Session errors. They are distinct so clients can tell a token that never
// existed (or was evicted) from one that aged out, and either from a
// request whose per-request signature failed.
var (
	// ErrNoSession is returned for a token the manager does not hold:
	// forged, never issued, closed, or already evicted.
	ErrNoSession = errors.New("middleware: unknown session token")
	// ErrSessionExpired is returned when a held session has passed its TTL
	// or its idle window; the session is evicted as a side effect.
	ErrSessionExpired = errors.New("middleware: session expired")
	// ErrStaleHello is returned for a handshake issued outside the
	// freshness window, closing the long-horizon replay surface.
	ErrStaleHello = errors.New("middleware: session hello outside freshness window")
	// ErrReplayedHello is returned when a handshake nonce is seen twice
	// within the freshness window: a recorded hello cannot mint a second
	// token.
	ErrReplayedHello = errors.New("middleware: session hello replayed")
	// ErrSessionRevoked is returned when the certificate a session was
	// opened under has been revoked: the session is evicted, and requests
	// carrying its token are rejected with this error (not ErrNoSession)
	// until the token's original expiry, so clients can tell trust
	// withdrawal from ordinary eviction. Opening a session with an
	// already-revoked certificate fails the same way. Eviction also
	// destroys the session's MAC key, so a revoked client's symmetric
	// fast path dies with its session.
	ErrSessionRevoked = errors.New("middleware: session certificate revoked")
	// ErrSessionBound is returned when a token minted on one transport
	// connection is presented over a different one (or over a transport
	// with no connection identity at all). Sessions opened through
	// OpenBound are pinned to the connection that performed the handshake,
	// so a stolen or replayed token is useless anywhere else; the session
	// itself stays live for its rightful connection.
	ErrSessionBound = errors.New("middleware: session token bound to another connection")
)

// RequestAuthMode selects how the session stage authenticates token-bearing
// requests in steady state.
type RequestAuthMode int

const (
	// AuthSig (the default) verifies an ECDSA signature over the request
	// digest against the session's cached certified key on every request.
	AuthSig RequestAuthMode = iota
	// AuthMAC verifies an HMAC over the request digest under the
	// per-session symmetric key handed out in the SessionGrant — roughly
	// two orders of magnitude cheaper than an ECDSA verify. Requests
	// without a MAC still fall back to the signature path, so first-contact
	// and mixed client populations keep working.
	AuthMAC
)

// String implements fmt.Stringer (config error messages).
func (m RequestAuthMode) String() string {
	switch m {
	case AuthSig:
		return "sig"
	case AuthMAC:
		return "mac"
	default:
		return fmt.Sprintf("RequestAuthMode(%d)", int(m))
	}
}

// ParseRequestAuthMode parses the "reqauth" config parameter.
func ParseRequestAuthMode(s string) (RequestAuthMode, error) {
	switch s {
	case "sig":
		return AuthSig, nil
	case "mac":
		return AuthMAC, nil
	default:
		return AuthSig, fmt.Errorf("unknown request auth mode %q (want sig or mac)", s)
	}
}

// SessionHello is the signed handshake a client sends to open a session:
// the full Authn verification (certificate chain + signature) is paid once
// here instead of on every submission. The signature covers the nonce and
// issue time, so a recorded hello cannot be replayed: the manager rejects
// stale issue times outright and remembers nonces within the freshness
// window.
type SessionHello struct {
	Principal string            `json:"principal"`
	Nonce     []byte            `json:"nonce"`
	IssuedAt  time.Time         `json:"issuedAt"`
	Cert      pki.Certificate   `json:"cert"`
	Sig       dcrypto.Signature `json:"sig"`
	// Codec optionally asks the gateway to serve this session with the
	// named wire codec ("binary" or "json"); the grant echoes what the
	// gateway actually offers. The field is not covered by the handshake
	// signature: codec choice carries no confidentiality or integrity
	// authority (every payload remains authenticated end to end in either
	// encoding), so a tampered preference can at worst downgrade framing
	// efficiency.
	Codec string `json:"codec,omitempty"`
	// TraceID optionally carries the client's trace identifier so a traced
	// client flow records its session handshake too. Like Codec it is not
	// covered by the handshake signature: it annotates observability, not
	// authority — tampering can at worst mislabel a trace.
	TraceID uint64 `json:"trace,omitempty"`
}

// SessionGrant is the manager's reply to an accepted handshake.
type SessionGrant struct {
	Token     string    `json:"token"`
	Principal string    `json:"principal"`
	ExpiresAt time.Time `json:"expiresAt"`
	// MacKey is the per-session request-authentication key, present only
	// when the manager runs reqauth=mac. It is derived via HKDF with the
	// handshake transcript digest as salt, so the key is cryptographically
	// bound to the PKI-verified handshake that opened the session. Its
	// secrecy rides the same channel the bearer token already does; the
	// server's copy dies with the session (expiry, close, or revocation).
	MacKey []byte `json:"macKey,omitempty"`
	// Codec is the wire codec the gateway will serve this session with;
	// empty means JSON.
	Codec string `json:"codec,omitempty"`
}

// helloDigest is the canonical signed content of a handshake.
func helloDigest(principal string, nonce []byte, issuedAt time.Time) [32]byte {
	return dcrypto.HashConcat(
		[]byte("middleware/session/hello/v1"),
		[]byte(principal),
		nonce,
		[]byte(issuedAt.UTC().Format(time.RFC3339Nano)),
	)
}

// helloFreshness bounds how old (or future-dated, for clock skew) a
// handshake may be; nonces are remembered for this window, so a recorded
// hello can never mint a second token.
const helloFreshness = 2 * time.Minute

// NewSessionHello builds and signs a handshake for a principal, stamped
// with the wall clock.
func NewSessionHello(principal string, cert pki.Certificate, key *dcrypto.PrivateKey) (SessionHello, error) {
	return NewSessionHelloAt(principal, cert, key, time.Now())
}

// NewSessionHelloAt builds and signs a handshake with an explicit issue
// time, for callers running on an injected clock.
func NewSessionHelloAt(principal string, cert pki.Certificate, key *dcrypto.PrivateKey, at time.Time) (SessionHello, error) {
	nonce, err := dcrypto.RandomBytes(16)
	if err != nil {
		return SessionHello{}, fmt.Errorf("middleware: hello nonce: %w", err)
	}
	d := helloDigest(principal, nonce, at)
	sig, err := key.Sign(d[:])
	if err != nil {
		return SessionHello{}, fmt.Errorf("middleware: sign hello: %w", err)
	}
	return SessionHello{Principal: principal, Nonce: nonce, IssuedAt: at, Cert: cert, Sig: sig}, nil
}

// sessionTokenBytes is the entropy of a session token (hex-encoded on the
// wire), far beyond guessability.
const sessionTokenBytes = 32

// session is one established client session: the verified principal and
// its certified key, cached so subsequent requests skip PKI verification.
// serial is the certificate the trust was rooted in at Open, the handle
// revocation checks match against. mac is the per-session HMAC key when
// the manager runs reqauth=mac. lastUsed is atomic unix-nanos so the
// resolve fast path can touch the idle clock under a read lock.
type session struct {
	principal string
	key       dcrypto.PublicKey
	mac       []byte
	// macKey is the precomputed-pad verifier over mac, derived once at
	// Open so the per-request HMAC check skips the pad derivation. Nil
	// when the manager runs reqauth=sig.
	macKey *dcrypto.MACKey
	serial uint64
	// boundTo pins the session to the transport connection that opened it
	// (OpenBound); empty for unbound sessions. resolve rejects any other
	// connection's TransportID with ErrSessionBound.
	boundTo   string
	openedAt  time.Time
	expiresAt time.Time
	lastUsed  atomic.Int64
}

// sessionStripeCount divides the token table into independently locked
// stripes so concurrent resolves on different tokens never contend on one
// mutex. Power of two, sized past any plausible core count.
const sessionStripeCount = 32

// sessionStripe is one lock stripe of the token table: its own sessions,
// its own revocation tombstones, its own RWMutex. The resolve hot path
// touches exactly one stripe, read-locked.
type sessionStripe struct {
	mu       sync.RWMutex
	sessions map[string]*session
	// revoked are tombstones for sessions evicted by revocation: their
	// tokens answer ErrSessionRevoked (not ErrNoSession) until the
	// session's original expiry, so a revoked client sees why it was cut
	// off. Keyed by token, valued by forget-after time. An explicit Close
	// clears the tombstone.
	revoked map[string]time.Time
}

// stripeFor hashes a token onto its stripe: FNV-1a over the first 16 token
// bytes plus the length. Genuine tokens are uniformly random hex, so an
// 8-byte prefix already carries 32 bits of stripe entropy against 64
// stripes; bounding the scan keeps the per-request hash O(1) in token
// length (tokens are 64 hex chars, and this sits on the resolve hot path).
func (m *SessionManager) stripeFor(token string) *sessionStripe {
	h := uint32(2166136261)
	n := len(token)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		h = (h ^ uint32(token[i])) * 16777619
	}
	h = (h ^ uint32(len(token))) * 16777619
	return &m.stripes[h&(sessionStripeCount-1)]
}

// SessionManager establishes and resolves gateway sessions. Opening a
// session performs the full certificate verification the authn stage would;
// afterwards, requests carrying the session token are bound to the cached
// verified principal by a per-request signature (reqauth=sig) or
// per-session HMAC (reqauth=mac) over the request digest. Sessions die at
// their TTL, or earlier when idle longer than the idle window. Safe for
// concurrent use: the token table is striped across independent RWMutexes,
// so resolve — the per-request hot path — takes one read lock on one
// stripe, while the control plane (open, close, sweeps, revocation deltas,
// the per-principal index) serializes on a separate mutex.
type SessionManager struct {
	caKey           dcrypto.PublicKey
	ttl             time.Duration
	idle            time.Duration
	maxPerPrincipal int
	reqauth         RequestAuthMode
	now             func() time.Time
	// defaultClock marks now as the package default (coarseNow): only then
	// may the session stage stamp its reading onto requests for downstream
	// stages on the same clock to reuse.
	defaultClock bool

	// Revocation plane, fixed at construction (WithRevocationChecks).
	revoker       Revoker
	revMode       RevokeCheckMode
	revSweepEvery time.Duration

	// sweepEvery throttles the Open-path table sweep: a full sweep walks
	// every stripe, so running one per open makes opens O(live sessions)
	// and a 100k-session edge quadratic. Expiry enforcement does not
	// depend on the sweep — resolve rejects and evicts stale tokens
	// itself — so the sweep is pure table hygiene and an interval bound
	// keeps it amortized O(1) per open. Derived from ttl/idle at
	// construction; lastSweep is guarded by mu.
	sweepEvery time.Duration
	lastSweep  time.Time

	// stripes is the token table. Lock order: mu (when needed) strictly
	// before any stripe lock; never acquire mu while holding a stripe.
	stripes [sessionStripeCount]sessionStripe

	// mu guards the control plane: the per-principal index and the
	// handshake nonce table. The resolve hot path never takes it.
	mu sync.Mutex
	// byPrincipal indexes live session tokens (and their open times, for
	// cap eviction) per principal, so neither the per-principal cap nor a
	// revocation delta ever scans other principals' sessions. Kept in
	// lockstep with the stripes under mu.
	byPrincipal map[string]map[string]time.Time
	// byTransport indexes bound session tokens per transport connection,
	// so EvictTransport (the connection-close path) reaps exactly the dead
	// connection's sessions without scanning the stripes. Kept in lockstep
	// with the stripes under mu; unbound sessions never appear here.
	byTransport map[string]map[string]bool
	// seenNonces remembers handshake nonces until their freshness window
	// closes, so a recorded hello cannot be replayed to mint a second
	// token. Keyed by nonce hex, valued by forget-after time.
	seenNonces map[string]time.Time

	// revEpoch is the last revocation epoch applied; lastRevSweep stamps
	// the last delta application (unix nanos) for the sweep-mode interval
	// check. Both atomic so resolve-mode probes and sweep-mode interval
	// checks stay lock-free while nothing changed.
	revEpoch     atomic.Uint64
	lastRevSweep atomic.Int64

	// Lifecycle counters; atomic so hot-path evictions skip mu.
	opened  atomic.Uint64
	expired atomic.Uint64
	evicted atomic.Uint64
	revoked atomic.Uint64
}

// SessionStats is a snapshot of the manager's lifecycle counters, the
// numbers "session hardening at scale" watches.
type SessionStats struct {
	// Live is the number of held sessions (including any not yet swept).
	Live int
	// Opened counts sessions granted over the manager's lifetime.
	Opened uint64
	// Expired counts sessions evicted at their TTL or idle window.
	Expired uint64
	// Evicted counts sessions displaced by the per-principal cap.
	Evicted uint64
	// Revoked counts sessions evicted because their certificate was
	// revoked (never double-counted with Expired or Evicted).
	Revoked uint64
}

// SessionOption configures a SessionManager beyond the required fields.
type SessionOption func(*SessionManager)

// WithMaxPerPrincipal caps live sessions per principal: opening a session
// beyond the cap evicts the principal's oldest session. n <= 0 means
// unlimited, the default.
func WithMaxPerPrincipal(n int) SessionOption {
	return func(m *SessionManager) {
		if n > 0 {
			m.maxPerPrincipal = n
		}
	}
}

// WithRequestAuth selects how token-bearing requests are authenticated in
// steady state: AuthSig (default) per-request ECDSA, AuthMAC per-session
// HMAC with the key handed out in the grant. The config parameter form is
// "reqauth" on the session stage.
func WithRequestAuth(mode RequestAuthMode) SessionOption {
	return func(m *SessionManager) { m.reqauth = mode }
}

// defaultRevokeSweep is the sweep-mode interval when none is configured.
const defaultRevokeSweep = 30 * time.Second

// WithRevocationChecks wires the manager to a revocation plane. In mode
// RevokeCheckResolve every token resolution probes the revoker's version
// and applies the delta when it moved; in RevokeCheckSweep the delta is
// applied every sweepEvery (<= 0 defaults to 30s) and on SweepRevoked
// calls (the push/admin-notification path). Either way, opening a session
// with a revoked certificate fails, evicted tokens answer
// ErrSessionRevoked until their original expiry, and evictions are counted
// in SessionStats.Revoked. Mode RevokeCheckOff ignores the revoker.
func WithRevocationChecks(r Revoker, mode RevokeCheckMode, sweepEvery time.Duration) SessionOption {
	return func(m *SessionManager) {
		m.revoker = r
		m.revMode = mode
		if sweepEvery <= 0 {
			sweepEvery = defaultRevokeSweep
		}
		m.revSweepEvery = sweepEvery
	}
}

// NewSessionManager creates a manager pinned to the consortium CA key.
// ttl bounds total session lifetime; idle evicts sessions unused that long.
func NewSessionManager(caKey dcrypto.PublicKey, ttl, idle time.Duration, now func() time.Time, opts ...SessionOption) (*SessionManager, error) {
	if caKey.IsZero() {
		return nil, errors.New("middleware: session manager needs the CA key")
	}
	if ttl <= 0 || idle <= 0 {
		return nil, fmt.Errorf("middleware: session ttl and idle must be positive, got ttl=%v idle=%v", ttl, idle)
	}
	defaultClock := now == nil
	if defaultClock {
		// The default clock is the cheap monotonic-anchored one: resolve
		// reads it on every authenticated request.
		now = coarseNow
	}
	m := &SessionManager{
		caKey:        caKey,
		ttl:          ttl,
		idle:         idle,
		now:          now,
		defaultClock: defaultClock,
		byPrincipal:  make(map[string]map[string]time.Time),
		byTransport:  make(map[string]map[string]bool),
		seenNonces:   make(map[string]time.Time),
	}
	for i := range m.stripes {
		m.stripes[i].sessions = make(map[string]*session)
		m.stripes[i].revoked = make(map[string]time.Time)
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.revMode != RevokeCheckOff && m.revoker == nil {
		return nil, fmt.Errorf("middleware: revocation checks (%v) need a revoker", m.revMode)
	}
	// A quarter of the shortest lifetime keeps test clocks (millisecond
	// ttls) sweeping on practically every open, while production windows
	// (minutes) settle at the one-second cap.
	m.sweepEvery = m.ttl
	if m.idle < m.sweepEvery {
		m.sweepEvery = m.idle
	}
	m.sweepEvery /= 4
	if m.sweepEvery > time.Second {
		m.sweepEvery = time.Second
	}
	m.lastRevSweep.Store(m.now().UnixNano())
	return m, nil
}

// RequestAuth reports the steady-state request authentication mode.
func (m *SessionManager) RequestAuth() RequestAuthMode { return m.reqauth }

// sessionMACInfo labels the HKDF derivation of per-session request keys.
const sessionMACInfo = "middleware/session/mac/v1/"

// Open verifies the handshake exactly as the authn stage verifies a
// request — certificate chains to the CA, identity matches, signature
// verifies against the certified key — and issues an unguessable token.
// Under reqauth=mac the grant additionally carries a per-session HMAC key,
// derived via HKDF salted with the handshake transcript digest so the
// symmetric fast path stays rooted in the PKI handshake it amortizes.
// Sessions opened this way are unbound: the token works from any transport.
func (m *SessionManager) Open(hello SessionHello) (SessionGrant, error) {
	return m.OpenBound(hello, "")
}

// OpenBound is Open with the token pinned to a transport connection
// identity: every subsequent resolve must present the same TransportID or
// fail with ErrSessionBound, so a token captured in flight (or leaked by a
// client) cannot be replayed over a different connection. The TCP edge
// opens every session this way, stamping each connection's identity; an
// empty transportID degrades to an unbound Open. Connection teardown
// should call EvictTransport to reap the bound sessions.
func (m *SessionManager) OpenBound(hello SessionHello, transportID string) (SessionGrant, error) {
	now := m.now()
	if hello.IssuedAt.Before(now.Add(-helloFreshness)) || hello.IssuedAt.After(now.Add(helloFreshness)) {
		return SessionGrant{}, fmt.Errorf("%w: issued %v, now %v", ErrStaleHello, hello.IssuedAt, now)
	}
	if err := pki.VerifyCertificate(hello.Cert, m.caKey, now); err != nil {
		return SessionGrant{}, fmt.Errorf("session open %s: %w", hello.Principal, err)
	}
	// A revoked certificate cannot root a new session, whatever the check
	// mode does to established ones. This unlocked check is the cheap
	// fast-fail; the authoritative re-check runs under the control lock
	// below, so a revocation sweeping between here and the insert cannot
	// slip a revoked serial into the table.
	if m.revMode != RevokeCheckOff && m.revoker.IsRevoked(hello.Cert.Serial) {
		return SessionGrant{}, fmt.Errorf("%w: open by %s (serial %d)",
			ErrSessionRevoked, hello.Principal, hello.Cert.Serial)
	}
	if hello.Cert.Identity != hello.Principal {
		return SessionGrant{}, fmt.Errorf("%w: cert for %q, hello by %q",
			ErrIdentityMismatch, hello.Cert.Identity, hello.Principal)
	}
	key, err := hello.Cert.Key()
	if err != nil {
		return SessionGrant{}, fmt.Errorf("session open %s: %w", hello.Principal, err)
	}
	d := helloDigest(hello.Principal, hello.Nonce, hello.IssuedAt)
	if err := key.Verify(d[:], hello.Sig); err != nil {
		return SessionGrant{}, fmt.Errorf("%w: session hello by %s", ErrBadSignature, hello.Principal)
	}
	raw, err := dcrypto.RandomBytes(sessionTokenBytes)
	if err != nil {
		return SessionGrant{}, fmt.Errorf("session token: %w", err)
	}
	token := hex.EncodeToString(raw)
	expires := now.Add(m.ttl)
	var macKey []byte
	if m.reqauth == AuthMAC {
		ikm, err := dcrypto.RandomBytes(dcrypto.MACKeySize)
		if err != nil {
			return SessionGrant{}, fmt.Errorf("session mac key: %w", err)
		}
		macKey, err = dcrypto.HKDF(ikm, d[:], []byte(sessionMACInfo+token), dcrypto.MACKeySize)
		if err != nil {
			return SessionGrant{}, fmt.Errorf("session mac key: %w", err)
		}
	}

	s := &session{
		principal: hello.Principal,
		key:       key,
		mac:       macKey,
		serial:    hello.Cert.Serial,
		boundTo:   transportID,
		openedAt:  now,
		expiresAt: expires,
	}
	if len(macKey) > 0 {
		s.macKey = dcrypto.NewMACKey(macKey)
	}
	s.lastUsed.Store(now.UnixNano())

	// A verified hello is consumed: its nonce is remembered until every
	// copy of it has gone stale, so replaying it cannot mint a token.
	nonceKey := hex.EncodeToString(hello.Nonce)
	m.mu.Lock()
	if now.Sub(m.lastSweep) >= m.sweepEvery {
		m.sweepLocked(now)
		m.lastSweep = now
	}
	if _, seen := m.seenNonces[nonceKey]; seen {
		m.mu.Unlock()
		return SessionGrant{}, fmt.Errorf("%w: principal %s", ErrReplayedHello, hello.Principal)
	}
	m.seenNonces[nonceKey] = hello.IssuedAt.Add(2 * helloFreshness)
	// Authoritative revocation re-check, under the same lock revocation
	// deltas are applied with: a Revoke that landed after the unlocked
	// check above has either already been applied (we must not insert a
	// session its sweep can no longer see) or will be applied later (and
	// will then evict the insert by serial). Either way no revoked serial
	// survives.
	if m.revMode != RevokeCheckOff && m.revoker.IsRevoked(hello.Cert.Serial) {
		m.mu.Unlock()
		return SessionGrant{}, fmt.Errorf("%w: open by %s (serial %d)",
			ErrSessionRevoked, hello.Principal, hello.Cert.Serial)
	}
	m.capPrincipalLocked(hello.Principal)
	m.opened.Add(1)
	st := m.stripeFor(token)
	st.mu.Lock()
	st.sessions[token] = s
	st.mu.Unlock()
	set := m.byPrincipal[hello.Principal]
	if set == nil {
		set = make(map[string]time.Time)
		m.byPrincipal[hello.Principal] = set
	}
	set[token] = now
	if transportID != "" {
		conns := m.byTransport[transportID]
		if conns == nil {
			conns = make(map[string]bool)
			m.byTransport[transportID] = conns
		}
		conns[token] = true
	}
	m.mu.Unlock()
	return SessionGrant{Token: token, Principal: hello.Principal, ExpiresAt: expires, MacKey: macKey}, nil
}

// Close ends a session. Closing an unknown token is a no-op: the token may
// already have been evicted by expiry, the per-principal cap, or a
// revocation sweep — a client draining its sessions must never see an
// error or skew a lifecycle counter for losing that race. Closing a
// revocation-tombstoned token clears the tombstone, so an explicitly
// closed token degrades to ErrNoSession like any other closed one.
func (m *SessionManager) Close(token string) {
	m.mu.Lock()
	st := m.stripeFor(token)
	st.mu.Lock()
	if s, ok := st.sessions[token]; ok {
		m.deleteSessionLocked(st, token, s)
	}
	delete(st.revoked, token)
	st.mu.Unlock()
	m.mu.Unlock()
}

// deleteSessionLocked removes a session from its stripe and the
// per-principal index. Called with mu AND the token's stripe lock held.
func (m *SessionManager) deleteSessionLocked(st *sessionStripe, token string, s *session) {
	delete(st.sessions, token)
	if set := m.byPrincipal[s.principal]; set != nil {
		delete(set, token)
		if len(set) == 0 {
			delete(m.byPrincipal, s.principal)
		}
	}
	if s.boundTo != "" {
		if conns := m.byTransport[s.boundTo]; conns != nil {
			delete(conns, token)
			if len(conns) == 0 {
				delete(m.byTransport, s.boundTo)
			}
		}
	}
}

// EvictTransport evicts every session bound to the transport connection —
// the connection-teardown path: a closed TCP connection's sessions can
// never be used again (their tokens answer ErrSessionBound everywhere
// else), so the edge reaps them immediately instead of waiting out the
// idle window. Evictions count in SessionStats.Evicted. Returns how many
// sessions died. Trivial for transports that never bound a session.
func (m *SessionManager) EvictTransport(transportID string) int {
	if transportID == "" {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for token := range m.byTransport[transportID] {
		st := m.stripeFor(token)
		st.mu.Lock()
		if s, ok := st.sessions[token]; ok {
			m.deleteSessionLocked(st, token, s)
			m.evicted.Add(1)
			n++
		}
		st.mu.Unlock()
	}
	delete(m.byTransport, transportID)
	return n
}

// resolve returns the verified principal, certified key, and (under
// reqauth=mac) precomputed session MAC verifier bound to a token, touching
// its idle clock.
// This is the gateway's per-request hot path: one read lock on one stripe,
// no control-plane mutex, no allocation. Expired or idle sessions are
// evicted via a write-locked slow path, and the revocation plane is
// consulted per the configured mode: resolve mode probes the revoker's
// version on every call (one atomic load when nothing changed), sweep mode
// only applies the delta when the sweep interval has elapsed.
// transportID is the connection identity the token arrived over; a
// bound session resolves only for its own connection (ErrSessionBound
// otherwise, without touching the idle clock — a replay must not keep the
// victim's session warm).
func (m *SessionManager) resolve(token, transportID string) (string, dcrypto.PublicKey, *dcrypto.MACKey, error) {
	return m.resolveAt(m.now(), token, transportID)
}

// resolveAt is resolve with the caller's clock reading: the session stage
// reads the clock once per request and shares the value between resolve and
// the stamp it leaves for downstream stages.
func (m *SessionManager) resolveAt(now time.Time, token, transportID string) (string, dcrypto.PublicKey, *dcrypto.MACKey, error) {
	switch m.revMode {
	case RevokeCheckResolve:
		if m.revoker.RevocationVersion() != m.revEpoch.Load() {
			m.applyRevocationDelta(now)
		}
	case RevokeCheckSweep:
		if now.UnixNano()-m.lastRevSweep.Load() >= int64(m.revSweepEvery) {
			m.applyRevocationDelta(now)
		}
	}
	st := m.stripeFor(token)
	st.mu.RLock()
	// The len guard skips hashing the token against an empty tombstone
	// table — the steady state of a deployment with no recent revocations.
	if len(st.revoked) > 0 {
		if forgetAfter, tombstoned := st.revoked[token]; tombstoned {
			st.mu.RUnlock()
			if now.After(forgetAfter) {
				st.mu.Lock()
				if forgetAfter, still := st.revoked[token]; still && now.After(forgetAfter) {
					delete(st.revoked, token)
				}
				st.mu.Unlock()
				return "", dcrypto.PublicKey{}, nil, ErrNoSession
			}
			return "", dcrypto.PublicKey{}, nil, ErrSessionRevoked
		}
	}
	s, ok := st.sessions[token]
	if !ok {
		st.mu.RUnlock()
		return "", dcrypto.PublicKey{}, nil, ErrNoSession
	}
	nowNanos := now.UnixNano()
	if now.After(s.expiresAt) || nowNanos-s.lastUsed.Load() > int64(m.idle) {
		st.mu.RUnlock()
		m.evictExpired(st, token, now)
		return "", dcrypto.PublicKey{}, nil, ErrSessionExpired
	}
	if s.boundTo != "" && s.boundTo != transportID {
		st.mu.RUnlock()
		return "", dcrypto.PublicKey{}, nil, ErrSessionBound
	}
	// Concurrent stores race benignly: every racer writes "about now".
	s.lastUsed.Store(nowNanos)
	principal, key, mac := s.principal, s.key, s.macKey
	st.mu.RUnlock()
	return principal, key, mac, nil
}

// evictExpired upgrades to the write-locked slow path after resolve saw a
// session past its TTL or idle window, rechecking under the locks (a
// concurrent Close or sweep may have beaten us here).
func (m *SessionManager) evictExpired(st *sessionStripe, token string, now time.Time) {
	m.mu.Lock()
	st.mu.Lock()
	if s, ok := st.sessions[token]; ok &&
		(now.After(s.expiresAt) || now.UnixNano()-s.lastUsed.Load() > int64(m.idle)) {
		m.deleteSessionLocked(st, token, s)
		m.expired.Add(1)
	}
	st.mu.Unlock()
	m.mu.Unlock()
}

// applyRevocationDelta serializes delta application on the control mutex;
// racing resolvers apply an empty delta and move on.
func (m *SessionManager) applyRevocationDelta(now time.Time) {
	m.mu.Lock()
	m.applyRevocationDeltaLocked(now)
	m.mu.Unlock()
}

// applyRevocationDeltaLocked pulls the revocations issued since the last
// applied epoch and evicts every session rooted in a revoked certificate,
// leaving a tombstone so the token answers ErrSessionRevoked until its
// original expiry. Only the revoked identity's own sessions are scanned,
// via the byPrincipal index. Called with mu held.
func (m *SessionManager) applyRevocationDeltaLocked(now time.Time) {
	revs, version := m.revoker.RevokedSince(m.revEpoch.Load())
	m.revEpoch.Store(version)
	m.lastRevSweep.Store(now.UnixNano())
	for _, rev := range revs {
		for token := range m.byPrincipal[rev.Identity] {
			st := m.stripeFor(token)
			st.mu.Lock()
			s := st.sessions[token]
			if s == nil || s.serial != rev.Serial {
				st.mu.Unlock()
				continue // a newer cert of the same identity still stands
			}
			m.deleteSessionLocked(st, token, s)
			m.revoked.Add(1)
			st.revoked[token] = s.expiresAt
			st.mu.Unlock()
		}
	}
}

// SweepRevoked applies the pending revocation delta immediately — the
// push path: the gateway calls it when the revocation source notifies or
// an admin hits the revocation.notify topic. It reports how many sessions
// the sweep evicted. A manager without revocation checks sweeps trivially.
func (m *SessionManager) SweepRevoked() int {
	if m.revMode == RevokeCheckOff {
		return 0
	}
	now := m.now()
	m.mu.Lock()
	before := m.revoked.Load()
	m.applyRevocationDeltaLocked(now)
	after := m.revoked.Load()
	m.mu.Unlock()
	return int(after - before)
}

// sweepLocked evicts every session past its TTL or idle window, and every
// remembered nonce and revocation tombstone past its forget-after time.
// Called with mu held, from Open at most once per sweepEvery, so an
// abandoned client population cannot grow any table without bound while a
// 100k-session open flood never pays a full table walk per handshake.
func (m *SessionManager) sweepLocked(now time.Time) {
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		for token, s := range st.sessions {
			if now.After(s.expiresAt) || now.UnixNano()-s.lastUsed.Load() > int64(m.idle) {
				m.deleteSessionLocked(st, token, s)
				m.expired.Add(1)
			}
		}
		for token, forgetAfter := range st.revoked {
			if now.After(forgetAfter) {
				delete(st.revoked, token)
			}
		}
		st.mu.Unlock()
	}
	for nonce, forgetAfter := range m.seenNonces {
		if now.After(forgetAfter) {
			delete(m.seenNonces, nonce)
		}
	}
}

// capPrincipalLocked makes room for one more session of the principal:
// while the principal sits at (or, after a cap change, above) the cap, the
// session opened longest ago is evicted. Called with mu held, after the
// sweep, so sessions expiring anyway do not count against the cap. Only
// the principal's own sessions are consulted, via the byPrincipal index —
// which carries each token's open time precisely so cap eviction never
// has to chase sessions across stripes to find the oldest.
func (m *SessionManager) capPrincipalLocked(principal string) {
	if m.maxPerPrincipal <= 0 {
		return
	}
	set := m.byPrincipal[principal]
	for len(set) >= m.maxPerPrincipal {
		oldestToken := ""
		var oldest time.Time
		for token, openedAt := range set {
			if oldestToken == "" || openedAt.Before(oldest) {
				oldestToken, oldest = token, openedAt
			}
		}
		st := m.stripeFor(oldestToken)
		st.mu.Lock()
		if s, ok := st.sessions[oldestToken]; ok {
			m.deleteSessionLocked(st, oldestToken, s)
		} else {
			delete(set, oldestToken) // index/stripe drift is impossible, but never loop forever
		}
		st.mu.Unlock()
		m.evicted.Add(1)
	}
}

// Len reports the number of live sessions (including any not yet swept).
func (m *SessionManager) Len() int {
	n := 0
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.RLock()
		n += len(st.sessions)
		st.mu.RUnlock()
	}
	return n
}

// Stats snapshots the manager's lifecycle counters. The eviction counters
// are read before Opened: an eviction always follows the open it undoes,
// so reading the evictions first (and Opened, which can only have grown,
// last) keeps the snapshot invariant Opened >= Expired+Evicted+Revoked
// even while submitters race the poll. The reverse order could observe an
// open-then-evict pair's eviction without its open.
func (m *SessionManager) Stats() SessionStats {
	expired := m.expired.Load()
	evicted := m.evicted.Load()
	revoked := m.revoked.Load()
	return SessionStats{
		Live:    m.Len(),
		Opened:  m.opened.Load(),
		Expired: expired,
		Evicted: evicted,
		Revoked: revoked,
	}
}

// RegisterMetrics registers the manager's lifecycle counters and live
// gauge into reg under the confmw_sessions_* names.
func (m *SessionManager) RegisterMetrics(reg *telemetry.Registry) error {
	if err := reg.GaugeFunc("confmw_sessions_live",
		"Currently held sessions.", func() float64 { return float64(m.Len()) }); err != nil {
		return err
	}
	for _, c := range []struct {
		name, help string
		fn         func() uint64
	}{
		{"confmw_sessions_opened_total", "Sessions granted.", m.opened.Load},
		{"confmw_sessions_expired_total", "Sessions evicted at their TTL or idle window.", m.expired.Load},
		{"confmw_sessions_evicted_total", "Sessions displaced by the per-principal cap.", m.evicted.Load},
		{"confmw_sessions_revoked_total", "Sessions evicted by certificate revocation.", m.revoked.Load},
	} {
		if err := reg.CounterFunc(c.name, c.help, c.fn); err != nil {
			return err
		}
	}
	return nil
}

// Session is the session-aware authn stage. A request carrying a token is
// bound to its session's cached verified principal by a per-request
// signature — or, under reqauth=mac, a per-session HMAC — over the request
// digest: no certificate verification on the hot path, and in MAC mode no
// public-key operation at all. A request without a token passes through
// untouched for the full authn stage downstream, so one chain serves both
// kinds of traffic.
type Session struct {
	mgr *SessionManager
}

// NewSession creates the session stage over an established manager.
func NewSession(mgr *SessionManager) (*Session, error) {
	if mgr == nil {
		return nil, errors.New("middleware: session stage needs a manager")
	}
	return &Session{mgr: mgr}, nil
}

// Name implements Stage.
func (s *Session) Name() string { return StageSession }

// Manager returns the stage's session manager, the handle the gateway
// serves session.open / session.close through.
func (s *Session) Manager() *SessionManager { return s.mgr }

// Handle implements Stage.
func (s *Session) Handle(ctx context.Context, req *Request, next Handler) error {
	if req.SessionToken == "" {
		return next(ctx, req)
	}
	now := s.mgr.now()
	if s.mgr.defaultClock {
		// Leave the reading for downstream stages on the same default
		// clock (encrypt's epoch expiry check): one clock read per request
		// instead of one per stage.
		req.nowStamp = now
	}
	principal, key, mac, err := s.mgr.resolveAt(now, req.SessionToken, req.TransportID)
	if err != nil {
		return fmt.Errorf("session %s: %w", req.Principal, err)
	}
	if principal != req.Principal {
		return fmt.Errorf("%w: session for %q, request by %q",
			ErrIdentityMismatch, principal, req.Principal)
	}
	d := req.Digest()
	if len(req.MAC) > 0 {
		// A MAC is only meaningful under reqauth=mac, where the session
		// holds the key to check it against; in sig mode no key was ever
		// derived, so a MAC-bearing request is a misconfigured client.
		if s.mgr.reqauth != AuthMAC || mac == nil {
			return fmt.Errorf("%w: session principal %s sent a MAC to a signature-only gateway", ErrBadMAC, req.Principal)
		}
		if err := mac.Verify(d[:], req.MAC); err != nil {
			return fmt.Errorf("%w: session principal %s", ErrBadMAC, req.Principal)
		}
	} else {
		// The signature path stays available in every mode: sessionless
		// and first-contact clients (and MAC-mode clients that have not
		// adopted the grant key yet) keep working unchanged.
		if err := key.Verify(d[:], req.Sig); err != nil {
			return fmt.Errorf("%w: session principal %s", ErrBadSignature, req.Principal)
		}
	}
	req.authenticated = true
	return next(ctx, req)
}
