package middleware

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/pki"
)

// Session errors. They are distinct so clients can tell a token that never
// existed (or was evicted) from one that aged out, and either from a
// request whose per-request signature failed.
var (
	// ErrNoSession is returned for a token the manager does not hold:
	// forged, never issued, closed, or already evicted.
	ErrNoSession = errors.New("middleware: unknown session token")
	// ErrSessionExpired is returned when a held session has passed its TTL
	// or its idle window; the session is evicted as a side effect.
	ErrSessionExpired = errors.New("middleware: session expired")
	// ErrStaleHello is returned for a handshake issued outside the
	// freshness window, closing the long-horizon replay surface.
	ErrStaleHello = errors.New("middleware: session hello outside freshness window")
	// ErrReplayedHello is returned when a handshake nonce is seen twice
	// within the freshness window: a recorded hello cannot mint a second
	// token.
	ErrReplayedHello = errors.New("middleware: session hello replayed")
	// ErrSessionRevoked is returned when the certificate a session was
	// opened under has been revoked: the session is evicted, and requests
	// carrying its token are rejected with this error (not ErrNoSession)
	// until the token's original expiry, so clients can tell trust
	// withdrawal from ordinary eviction. Opening a session with an
	// already-revoked certificate fails the same way.
	ErrSessionRevoked = errors.New("middleware: session certificate revoked")
)

// SessionHello is the signed handshake a client sends to open a session:
// the full Authn verification (certificate chain + signature) is paid once
// here instead of on every submission. The signature covers the nonce and
// issue time, so a recorded hello cannot be replayed: the manager rejects
// stale issue times outright and remembers nonces within the freshness
// window.
type SessionHello struct {
	Principal string            `json:"principal"`
	Nonce     []byte            `json:"nonce"`
	IssuedAt  time.Time         `json:"issuedAt"`
	Cert      pki.Certificate   `json:"cert"`
	Sig       dcrypto.Signature `json:"sig"`
}

// SessionGrant is the manager's reply to an accepted handshake.
type SessionGrant struct {
	Token     string    `json:"token"`
	Principal string    `json:"principal"`
	ExpiresAt time.Time `json:"expiresAt"`
}

// helloDigest is the canonical signed content of a handshake.
func helloDigest(principal string, nonce []byte, issuedAt time.Time) [32]byte {
	return dcrypto.HashConcat(
		[]byte("middleware/session/hello/v1"),
		[]byte(principal),
		nonce,
		[]byte(issuedAt.UTC().Format(time.RFC3339Nano)),
	)
}

// helloFreshness bounds how old (or future-dated, for clock skew) a
// handshake may be; nonces are remembered for this window, so a recorded
// hello can never mint a second token.
const helloFreshness = 2 * time.Minute

// NewSessionHello builds and signs a handshake for a principal, stamped
// with the wall clock.
func NewSessionHello(principal string, cert pki.Certificate, key *dcrypto.PrivateKey) (SessionHello, error) {
	return NewSessionHelloAt(principal, cert, key, time.Now())
}

// NewSessionHelloAt builds and signs a handshake with an explicit issue
// time, for callers running on an injected clock.
func NewSessionHelloAt(principal string, cert pki.Certificate, key *dcrypto.PrivateKey, at time.Time) (SessionHello, error) {
	nonce, err := dcrypto.RandomBytes(16)
	if err != nil {
		return SessionHello{}, fmt.Errorf("middleware: hello nonce: %w", err)
	}
	d := helloDigest(principal, nonce, at)
	sig, err := key.Sign(d[:])
	if err != nil {
		return SessionHello{}, fmt.Errorf("middleware: sign hello: %w", err)
	}
	return SessionHello{Principal: principal, Nonce: nonce, IssuedAt: at, Cert: cert, Sig: sig}, nil
}

// sessionTokenBytes is the entropy of a session token (hex-encoded on the
// wire), far beyond guessability.
const sessionTokenBytes = 32

// session is one established client session: the verified principal and
// its certified key, cached so subsequent requests skip PKI verification.
// serial is the certificate the trust was rooted in at Open, the handle
// revocation checks match against.
type session struct {
	principal string
	key       dcrypto.PublicKey
	serial    uint64
	openedAt  time.Time
	lastUsed  time.Time
	expiresAt time.Time
}

// SessionManager establishes and resolves gateway sessions. Opening a
// session performs the full certificate verification the authn stage would;
// afterwards, requests carrying the session token are bound to the cached
// verified principal by a per-request signature over the request digest.
// Sessions die at their TTL, or earlier when idle longer than the idle
// window. Safe for concurrent use.
type SessionManager struct {
	caKey           dcrypto.PublicKey
	ttl             time.Duration
	idle            time.Duration
	maxPerPrincipal int
	now             func() time.Time

	// Revocation plane, fixed at construction (WithRevocationChecks).
	revoker       Revoker
	revMode       RevokeCheckMode
	revSweepEvery time.Duration

	mu       sync.Mutex
	sessions map[string]*session
	// byPrincipal indexes live session tokens per principal so the
	// per-principal cap never scans other principals' sessions; kept in
	// lockstep with sessions by insertLocked/deleteSessionLocked.
	byPrincipal map[string]map[string]bool
	// seenNonces remembers handshake nonces until their freshness window
	// closes, so a recorded hello cannot be replayed to mint a second
	// token. Keyed by nonce hex, valued by forget-after time.
	seenNonces map[string]time.Time
	// revokedTokens are tombstones for sessions evicted by revocation:
	// their tokens answer ErrSessionRevoked (not ErrNoSession) until the
	// session's original expiry, so a revoked client sees why it was cut
	// off. Keyed by token, valued by forget-after time. An explicit Close
	// clears the tombstone.
	revokedTokens map[string]time.Time
	// revEpoch is the last revocation epoch applied; lastRevSweep stamps
	// the last delta application for the sweep-mode interval check.
	revEpoch     uint64
	lastRevSweep time.Time
	// Lifecycle counters, guarded by mu (every transition already holds it).
	opened  uint64
	expired uint64
	evicted uint64
	revoked uint64
}

// SessionStats is a snapshot of the manager's lifecycle counters, the
// numbers "session hardening at scale" watches.
type SessionStats struct {
	// Live is the number of held sessions (including any not yet swept).
	Live int
	// Opened counts sessions granted over the manager's lifetime.
	Opened uint64
	// Expired counts sessions evicted at their TTL or idle window.
	Expired uint64
	// Evicted counts sessions displaced by the per-principal cap.
	Evicted uint64
	// Revoked counts sessions evicted because their certificate was
	// revoked (never double-counted with Expired or Evicted).
	Revoked uint64
}

// SessionOption configures a SessionManager beyond the required fields.
type SessionOption func(*SessionManager)

// WithMaxPerPrincipal caps live sessions per principal: opening a session
// beyond the cap evicts the principal's oldest session. n <= 0 means
// unlimited, the default.
func WithMaxPerPrincipal(n int) SessionOption {
	return func(m *SessionManager) {
		if n > 0 {
			m.maxPerPrincipal = n
		}
	}
}

// defaultRevokeSweep is the sweep-mode interval when none is configured.
const defaultRevokeSweep = 30 * time.Second

// WithRevocationChecks wires the manager to a revocation plane. In mode
// RevokeCheckResolve every token resolution probes the revoker's version
// and applies the delta when it moved; in RevokeCheckSweep the delta is
// applied every sweepEvery (<= 0 defaults to 30s) and on SweepRevoked
// calls (the push/admin-notification path). Either way, opening a session
// with a revoked certificate fails, evicted tokens answer
// ErrSessionRevoked until their original expiry, and evictions are counted
// in SessionStats.Revoked. Mode RevokeCheckOff ignores the revoker.
func WithRevocationChecks(r Revoker, mode RevokeCheckMode, sweepEvery time.Duration) SessionOption {
	return func(m *SessionManager) {
		m.revoker = r
		m.revMode = mode
		if sweepEvery <= 0 {
			sweepEvery = defaultRevokeSweep
		}
		m.revSweepEvery = sweepEvery
	}
}

// NewSessionManager creates a manager pinned to the consortium CA key.
// ttl bounds total session lifetime; idle evicts sessions unused that long.
func NewSessionManager(caKey dcrypto.PublicKey, ttl, idle time.Duration, now func() time.Time, opts ...SessionOption) (*SessionManager, error) {
	if caKey.IsZero() {
		return nil, errors.New("middleware: session manager needs the CA key")
	}
	if ttl <= 0 || idle <= 0 {
		return nil, fmt.Errorf("middleware: session ttl and idle must be positive, got ttl=%v idle=%v", ttl, idle)
	}
	if now == nil {
		now = time.Now
	}
	m := &SessionManager{
		caKey:         caKey,
		ttl:           ttl,
		idle:          idle,
		now:           now,
		sessions:      make(map[string]*session),
		byPrincipal:   make(map[string]map[string]bool),
		seenNonces:    make(map[string]time.Time),
		revokedTokens: make(map[string]time.Time),
	}
	for _, opt := range opts {
		opt(m)
	}
	if m.revMode != RevokeCheckOff && m.revoker == nil {
		return nil, fmt.Errorf("middleware: revocation checks (%v) need a revoker", m.revMode)
	}
	m.lastRevSweep = m.now()
	return m, nil
}

// Open verifies the handshake exactly as the authn stage verifies a
// request — certificate chains to the CA, identity matches, signature
// verifies against the certified key — and issues an unguessable token.
func (m *SessionManager) Open(hello SessionHello) (SessionGrant, error) {
	now := m.now()
	if hello.IssuedAt.Before(now.Add(-helloFreshness)) || hello.IssuedAt.After(now.Add(helloFreshness)) {
		return SessionGrant{}, fmt.Errorf("%w: issued %v, now %v", ErrStaleHello, hello.IssuedAt, now)
	}
	if err := pki.VerifyCertificate(hello.Cert, m.caKey, now); err != nil {
		return SessionGrant{}, fmt.Errorf("session open %s: %w", hello.Principal, err)
	}
	// A revoked certificate cannot root a new session, whatever the check
	// mode does to established ones. This unlocked check is the cheap
	// fast-fail; the authoritative re-check runs under the lock below, so
	// a revocation sweeping between here and the insert cannot slip a
	// revoked serial into the table.
	if m.revMode != RevokeCheckOff && m.revoker.IsRevoked(hello.Cert.Serial) {
		return SessionGrant{}, fmt.Errorf("%w: open by %s (serial %d)",
			ErrSessionRevoked, hello.Principal, hello.Cert.Serial)
	}
	if hello.Cert.Identity != hello.Principal {
		return SessionGrant{}, fmt.Errorf("%w: cert for %q, hello by %q",
			ErrIdentityMismatch, hello.Cert.Identity, hello.Principal)
	}
	key, err := hello.Cert.Key()
	if err != nil {
		return SessionGrant{}, fmt.Errorf("session open %s: %w", hello.Principal, err)
	}
	d := helloDigest(hello.Principal, hello.Nonce, hello.IssuedAt)
	if err := key.Verify(d[:], hello.Sig); err != nil {
		return SessionGrant{}, fmt.Errorf("%w: session hello by %s", ErrBadSignature, hello.Principal)
	}
	raw, err := dcrypto.RandomBytes(sessionTokenBytes)
	if err != nil {
		return SessionGrant{}, fmt.Errorf("session token: %w", err)
	}
	token := hex.EncodeToString(raw)
	expires := now.Add(m.ttl)

	// A verified hello is consumed: its nonce is remembered until every
	// copy of it has gone stale, so replaying it cannot mint a token.
	nonceKey := hex.EncodeToString(hello.Nonce)
	m.mu.Lock()
	m.sweepLocked(now)
	if _, seen := m.seenNonces[nonceKey]; seen {
		m.mu.Unlock()
		return SessionGrant{}, fmt.Errorf("%w: principal %s", ErrReplayedHello, hello.Principal)
	}
	m.seenNonces[nonceKey] = hello.IssuedAt.Add(2 * helloFreshness)
	// Authoritative revocation re-check, under the same lock the delta
	// sweeps take: a Revoke that landed after the unlocked check above has
	// either already been applied (we must not insert a session its sweep
	// can no longer see) or will be applied later (and will then evict the
	// insert by serial). Either way no revoked serial survives.
	if m.revMode != RevokeCheckOff && m.revoker.IsRevoked(hello.Cert.Serial) {
		m.mu.Unlock()
		return SessionGrant{}, fmt.Errorf("%w: open by %s (serial %d)",
			ErrSessionRevoked, hello.Principal, hello.Cert.Serial)
	}
	m.capPrincipalLocked(hello.Principal)
	m.opened++
	m.insertLocked(token, &session{
		principal: hello.Principal,
		key:       key,
		serial:    hello.Cert.Serial,
		openedAt:  now,
		lastUsed:  now,
		expiresAt: expires,
	})
	m.mu.Unlock()
	return SessionGrant{Token: token, Principal: hello.Principal, ExpiresAt: expires}, nil
}

// Close ends a session. Closing an unknown token is a no-op: the token may
// already have been evicted by expiry, the per-principal cap, or a
// revocation sweep — a client draining its sessions must never see an
// error or skew a lifecycle counter for losing that race. Closing a
// revocation-tombstoned token clears the tombstone, so an explicitly
// closed token degrades to ErrNoSession like any other closed one.
func (m *SessionManager) Close(token string) {
	m.mu.Lock()
	m.deleteSessionLocked(token)
	delete(m.revokedTokens, token)
	m.mu.Unlock()
}

// insertLocked stores a session and indexes its token by principal.
// Called with the lock held.
func (m *SessionManager) insertLocked(token string, s *session) {
	m.sessions[token] = s
	set := m.byPrincipal[s.principal]
	if set == nil {
		set = make(map[string]bool)
		m.byPrincipal[s.principal] = set
	}
	set[token] = true
}

// deleteSessionLocked removes a session from both the token table and the
// per-principal index. Called with the lock held; unknown tokens are a
// no-op.
func (m *SessionManager) deleteSessionLocked(token string) {
	s, ok := m.sessions[token]
	if !ok {
		return
	}
	delete(m.sessions, token)
	if set := m.byPrincipal[s.principal]; set != nil {
		delete(set, token)
		if len(set) == 0 {
			delete(m.byPrincipal, s.principal)
		}
	}
}

// resolve returns the verified principal and key bound to a token,
// touching its idle clock. Expired or idle sessions are evicted here, and
// the revocation plane is consulted per the configured mode: resolve mode
// probes the revoker's version on every call (one atomic load when nothing
// changed), sweep mode only applies the delta when the sweep interval has
// elapsed.
func (m *SessionManager) resolve(token string) (string, dcrypto.PublicKey, error) {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.revMode {
	case RevokeCheckResolve:
		if m.revoker.RevocationVersion() != m.revEpoch {
			m.applyRevocationDeltaLocked(now)
		}
	case RevokeCheckSweep:
		if now.Sub(m.lastRevSweep) >= m.revSweepEvery {
			m.applyRevocationDeltaLocked(now)
		}
	}
	if forgetAfter, tombstoned := m.revokedTokens[token]; tombstoned {
		if now.After(forgetAfter) {
			delete(m.revokedTokens, token)
			return "", dcrypto.PublicKey{}, ErrNoSession
		}
		return "", dcrypto.PublicKey{}, ErrSessionRevoked
	}
	s, ok := m.sessions[token]
	if !ok {
		return "", dcrypto.PublicKey{}, ErrNoSession
	}
	if now.After(s.expiresAt) || now.Sub(s.lastUsed) > m.idle {
		m.deleteSessionLocked(token)
		m.expired++
		return "", dcrypto.PublicKey{}, ErrSessionExpired
	}
	s.lastUsed = now
	return s.principal, s.key, nil
}

// applyRevocationDeltaLocked pulls the revocations issued since the last
// applied epoch and evicts every session rooted in a revoked certificate,
// leaving a tombstone so the token answers ErrSessionRevoked until its
// original expiry. Only the revoked identity's own sessions are scanned,
// via the byPrincipal index. Called with the lock held.
func (m *SessionManager) applyRevocationDeltaLocked(now time.Time) {
	revs, version := m.revoker.RevokedSince(m.revEpoch)
	m.revEpoch = version
	m.lastRevSweep = now
	for _, rev := range revs {
		for token := range m.byPrincipal[rev.Identity] {
			s := m.sessions[token]
			if s.serial != rev.Serial {
				continue // a newer cert of the same identity still stands
			}
			m.deleteSessionLocked(token)
			m.revoked++
			m.revokedTokens[token] = s.expiresAt
		}
	}
}

// SweepRevoked applies the pending revocation delta immediately — the
// push path: the gateway calls it when the revocation source notifies or
// an admin hits the revocation.notify topic. It reports how many sessions
// the sweep evicted. A manager without revocation checks sweeps trivially.
func (m *SessionManager) SweepRevoked() int {
	if m.revMode == RevokeCheckOff {
		return 0
	}
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	before := m.revoked
	m.applyRevocationDeltaLocked(now)
	return int(m.revoked - before)
}

// sweepLocked evicts every session past its TTL or idle window, and every
// remembered nonce past its forget-after time. Called with the lock held,
// on each Open, so an abandoned client population cannot grow either
// table without bound.
func (m *SessionManager) sweepLocked(now time.Time) {
	for token, s := range m.sessions {
		if now.After(s.expiresAt) || now.Sub(s.lastUsed) > m.idle {
			m.deleteSessionLocked(token)
			m.expired++
		}
	}
	for nonce, forgetAfter := range m.seenNonces {
		if now.After(forgetAfter) {
			delete(m.seenNonces, nonce)
		}
	}
	for token, forgetAfter := range m.revokedTokens {
		if now.After(forgetAfter) {
			delete(m.revokedTokens, token)
		}
	}
}

// capPrincipalLocked makes room for one more session of the principal:
// while the principal sits at (or, after a cap change, above) the cap, the
// session opened longest ago is evicted. Called with the lock held, after
// the sweep, so sessions expiring anyway do not count against the cap.
// Only the principal's own sessions are scanned, via the byPrincipal
// index, so a large overall population does not slow Open down.
func (m *SessionManager) capPrincipalLocked(principal string) {
	if m.maxPerPrincipal <= 0 {
		return
	}
	set := m.byPrincipal[principal]
	for len(set) >= m.maxPerPrincipal {
		oldestToken := ""
		var oldest time.Time
		for token := range set {
			s := m.sessions[token]
			if oldestToken == "" || s.openedAt.Before(oldest) {
				oldestToken, oldest = token, s.openedAt
			}
		}
		m.deleteSessionLocked(oldestToken)
		m.evicted++
	}
}

// Len reports the number of live sessions (including any not yet swept).
func (m *SessionManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Stats snapshots the manager's lifecycle counters.
func (m *SessionManager) Stats() SessionStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return SessionStats{
		Live:    len(m.sessions),
		Opened:  m.opened,
		Expired: m.expired,
		Evicted: m.evicted,
		Revoked: m.revoked,
	}
}

// Session is the session-aware authn stage. A request carrying a token is
// bound to its session's cached verified principal by a per-request
// signature over the request digest — no certificate verification on the
// hot path. A request without a token passes through untouched for the
// full authn stage downstream, so one chain serves both kinds of traffic.
type Session struct {
	mgr *SessionManager
}

// NewSession creates the session stage over an established manager.
func NewSession(mgr *SessionManager) (*Session, error) {
	if mgr == nil {
		return nil, errors.New("middleware: session stage needs a manager")
	}
	return &Session{mgr: mgr}, nil
}

// Name implements Stage.
func (s *Session) Name() string { return StageSession }

// Manager returns the stage's session manager, the handle the gateway
// serves session.open / session.close through.
func (s *Session) Manager() *SessionManager { return s.mgr }

// Handle implements Stage.
func (s *Session) Handle(ctx context.Context, req *Request, next Handler) error {
	if req.SessionToken == "" {
		return next(ctx, req)
	}
	principal, key, err := s.mgr.resolve(req.SessionToken)
	if err != nil {
		return fmt.Errorf("session %s: %w", req.Principal, err)
	}
	if principal != req.Principal {
		return fmt.Errorf("%w: session for %q, request by %q",
			ErrIdentityMismatch, principal, req.Principal)
	}
	d := req.Digest()
	if err := key.Verify(d[:], req.Sig); err != nil {
		return fmt.Errorf("%w: session principal %s", ErrBadSignature, req.Principal)
	}
	req.authenticated = true
	return next(ctx, req)
}
