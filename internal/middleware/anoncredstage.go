package middleware

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"dltprivacy/internal/anoncred"
	"dltprivacy/internal/zkp"
)

// StageAnonCred authenticates submissions with anonymous-credential
// presentations instead of (or alongside) certificates: the gateway learns
// that the submitter holds a credential for the configured attribute set,
// and a scope-exclusive pseudonym — never the submitter's identity.
const StageAnonCred = "anoncred"

// Meta keys used by the anoncred stage.
const (
	// MetaAnonCred carries the wire-encoded presentation on submit; the
	// stage consumes it and leaves a compact note.
	MetaAnonCred = "anoncred"
	// MetaNym records the verified scope-exclusive pseudonym, riding into
	// transaction metadata so auditors can link same-scope activity
	// without identifying the wallet.
	MetaNym = "nym"
)

// Errors returned by the anoncred stage.
var (
	// ErrCredentialRequired is returned when an unauthenticated submission
	// carries no presentation and the stage requires one.
	ErrCredentialRequired = errors.New("middleware: anoncred: submission carries no credential presentation")
	// ErrCredentialRejected is returned when a carried presentation fails
	// to decode or verify, including one-show replays.
	ErrCredentialRejected = errors.New("middleware: anoncred: credential presentation rejected")
)

// AnonCred verifies anonymous-credential presentations (Env.AnonCredKey is
// the issuer's attribute verification key). A verified presentation
// authenticates the request — the stage counts as authn for downstream
// ordering rules — with the presentation's pseudonym as the principal.
// One-show tokens are enforced: replaying a presentation fails even though
// the wallet stays unlinkable across scopes.
type AnonCred struct {
	key     zkp.Point
	attrs   []string // canonical (sorted) required attribute set
	scope   string
	require bool
	shows   *anoncred.ShowRegistry
}

// NewAnonCred creates the stage. attrs is the attribute set presentations
// must cover, scope the presentation context they must be bound to. With
// require, submissions that are not already authenticated upstream must
// carry a presentation; without it, presentation-less requests pass
// through to later authenticators.
func NewAnonCred(key zkp.Point, attrs []string, scope string, require bool) (*AnonCred, error) {
	if !key.Valid() || key.IsIdentity() {
		return nil, errors.New("middleware: anoncred needs the issuer attribute key (Env.AnonCredKey)")
	}
	if len(attrs) == 0 {
		return nil, errors.New("middleware: anoncred needs a non-empty attribute set")
	}
	if scope == "" {
		return nil, errors.New("middleware: anoncred needs a presentation scope")
	}
	canonical := append([]string(nil), attrs...)
	sort.Strings(canonical)
	return &AnonCred{
		key:     key,
		attrs:   canonical,
		scope:   scope,
		require: require,
		shows:   anoncred.NewShowRegistry(),
	}, nil
}

// Name implements Stage.
func (a *AnonCred) Name() string { return StageAnonCred }

// Shown reports how many distinct credential tokens the stage has
// accepted.
func (a *AnonCred) Shown() int { return a.shows.Shown() }

// Handle implements Stage.
func (a *AnonCred) Handle(ctx context.Context, req *Request, next Handler) error {
	blob, ok := req.Meta[MetaAnonCred]
	if !ok || blob == "" {
		if req.authenticated || !a.require {
			// Another authenticator vouched (or will): certificate and
			// session traffic shares the pipeline with credential traffic.
			return next(ctx, req)
		}
		return fmt.Errorf("%w (scope %s)", ErrCredentialRequired, a.scope)
	}
	if len(blob) > maxProofWireBytes {
		return fmt.Errorf("%w: presentation exceeds %d bytes", ErrCredentialRejected, maxProofWireBytes)
	}
	var p anoncred.Presentation
	if err := json.Unmarshal([]byte(blob), &p); err != nil {
		return fmt.Errorf("%w: %v", ErrCredentialRejected, err)
	}
	if err := checkPresentationPoints(&p); err != nil {
		return fmt.Errorf("%w: %v", ErrCredentialRejected, err)
	}
	if p.Context != a.scope {
		return fmt.Errorf("%w: presentation scope %q, stage requires %q", ErrCredentialRejected, p.Context, a.scope)
	}
	if !sameAttrSet(p.Attrs, a.attrs) {
		return fmt.Errorf("%w: attribute set %v, stage requires %v", ErrCredentialRejected, p.Attrs, a.attrs)
	}
	nym := p.NymString()
	if req.Principal != nym {
		return fmt.Errorf("%w: principal %q is not the presentation pseudonym", ErrCredentialRejected, req.Principal)
	}
	// Accept verifies the credential signature and the pseudonym link
	// proof, then burns the one-show token.
	if err := a.shows.Accept(p, a.key); err != nil {
		return fmt.Errorf("%w: %v", ErrCredentialRejected, err)
	}
	req.authenticated = true
	req.Meta[MetaAnonCred] = "present/" + a.scope
	req.Meta[MetaNym] = nym
	return next(ctx, req)
}

// checkPresentationPoints sanitizes every attacker-controlled group
// element in a decoded presentation before verification touches curve
// arithmetic.
func checkPresentationPoints(p *anoncred.Presentation) error {
	for _, pt := range []zkp.Point{p.Comm.P, p.Sig.R, p.Nym, p.Link.A1, p.Link.A2} {
		if !pt.Valid() {
			return errors.New("presentation element is not a group element")
		}
	}
	if p.Nym.IsIdentity() {
		return errors.New("identity pseudonym")
	}
	return nil
}

// sameAttrSet compares an offered attribute list against the canonical
// (sorted) required set, order-insensitively.
func sameAttrSet(offered, canonical []string) bool {
	if len(offered) != len(canonical) {
		return false
	}
	sorted := append([]string(nil), offered...)
	sort.Strings(sorted)
	for i := range sorted {
		if sorted[i] != canonical[i] {
			return false
		}
	}
	return true
}

// AttachPresentation is the client-side counterpart of the anoncred stage:
// it consumes one wallet token, presents the attribute set under scope,
// binds the request principal to the scope-exclusive pseudonym, and
// attaches the wire-encoded presentation. The pseudonym (now the request
// principal) is returned.
func AttachPresentation(req *Request, w *anoncred.Wallet, attrs []string, scope string) (string, error) {
	p, err := w.Present(attrs, scope)
	if err != nil {
		return "", err
	}
	blob, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	req.Principal = p.NymString()
	if req.Meta == nil {
		req.Meta = make(map[string]string, 1)
	}
	req.Meta[MetaAnonCred] = string(blob)
	return req.Principal, nil
}

func init() {
	mustRegisterStage(stageDef{
		name: StageAnonCred,
		desc: "anonymous-credential authentication: verify a presentation, principal = pseudonym",
		params: []paramSpec{
			{"mode", `credential system, only "present"`},
			{"attrs", `required attribute set, "+"-separated (e.g. role=member+org=bank)`},
			{"scope", "required presentation context (pseudonyms are scope-exclusive)"},
			{"require", "on|off (default on): unauthenticated submissions must present"},
		},
		countsAs: StageAuthn,
		before: []orderRule{
			{StageAuthn, "a presented credential authenticates the request before the certificate path runs"},
			{StageRateLimit, whyPrincipalBuckets},
		},
		build: func(p *params, sc StageConfig, env Env) (Stage, error) {
			if mode := p.str("mode", "present"); mode != "present" {
				return nil, fmt.Errorf("unknown anoncred mode %q (want present)", mode)
			}
			attrsRaw := p.str("attrs", "")
			scope := p.str("scope", "")
			require := p.enum("require", "on", "on", "off")
			if p.err != nil {
				return nil, p.err
			}
			if attrsRaw == "" {
				return nil, errors.New(`anoncred needs attrs (the "+"-separated attribute set to require)`)
			}
			if scope == "" {
				return nil, errors.New("anoncred needs scope (the presentation context to require)")
			}
			return NewAnonCred(env.AnonCredKey, splitAttrs(attrsRaw), scope, require == "on")
		},
	})
}

// splitAttrs splits a "+"-separated attribute set, dropping empty parts.
func splitAttrs(raw string) []string {
	var out []string
	for _, a := range strings.Split(raw, "+") {
		if a != "" {
			out = append(out, a)
		}
	}
	return out
}
