package middleware

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBatchRelease wraps failures from a group release. It is deliberately
// permanent (never transient): members of the group were already
// acknowledged and attempted, so re-running the batch stage would
// re-buffer only the filling request and double-order the members that
// committed. The error text names each failed request by ID so operators
// can reconcile.
var ErrBatchRelease = errors.New("middleware: batch release failed")

// groupPayloadsPool recycles the payload-view scratch of group releases:
// without it every group release allocates a fresh slice of N pointers
// just to hand the member payloads to the sealer.
var groupPayloadsPool = sync.Pool{New: func() any { return new([][]byte) }}

// Batch aggregates accepted submissions and releases them downstream in
// groups of the configured size, the write-combining tier in front of the
// ordering service. A buffered request is acknowledged immediately (its
// Handle returns nil); the whole group travels downstream when the batch
// fills or Flush is called. Because any later stage would be skipped for
// batched requests, Config requires batch to be the final stage.
//
// In group-seal mode (groupseal=on, wired by Config.Build to the encrypt
// stage's epoch key cache) requests are bucketed per (channel, epoch) and a
// full bucket is sealed with ONE AEAD invocation over the concatenated
// payloads, sharing the epoch's precomputed wrapped-key table; the group
// crosses to the orderer as a single GroupEnvelope transaction under the
// BatchPrincipal. The per-transaction seal and ordering cost amortizes to
// 1/size.
//
// Error semantics follow the ordering service's batching: failures from a
// group release surface to the flushing caller (the filling submission or
// Flush), while earlier members of the group were already acknowledged.
// Submitters that need per-submission confirmation should use
// Gateway.SubmitAsync (each member's future resolves with its own delivery
// outcome at release), run batch size 1, or reconcile against backend
// commit stats.
type Batch struct {
	size int
	// enc is the encrypt stage sealing groups, non-nil exactly in
	// group-seal mode; set by Config.Build before traffic.
	enc *Encrypt
	// fullMeta is the MetaBatch value of a full-size group, precomputed so
	// the steady-state release allocates no formatting scratch.
	fullMeta string

	mu      sync.Mutex
	pending []*Request                 // plain mode buffer
	groups  map[*channelKey][]*Request // group-seal buckets per (channel, epoch)
	free    [][]*Request               // released bucket arrays, ready for reuse
	next    Handler

	groupsSealed atomic.Uint64 // group envelopes released (group-seal mode)
	groupTxs     atomic.Uint64 // member transactions inside those groups
}

// NewBatch creates the batch stage with the given group size.
func NewBatch(size int) (*Batch, error) {
	if size < 1 {
		return nil, fmt.Errorf("middleware: batch needs size >= 1, got %d", size)
	}
	return &Batch{size: size}, nil
}

// Name implements Stage.
func (b *Batch) Name() string { return StageBatch }

// bindEncrypt switches the stage into group-seal mode over the encrypt
// stage's epoch key cache. Called by Config.Build before traffic.
func (b *Batch) bindEncrypt(enc *Encrypt) {
	b.enc = enc
	b.groups = make(map[*channelKey][]*Request)
	b.fullMeta = GroupEnvelopeScheme + " n=" + strconv.Itoa(b.size)
}

// GroupSeal reports whether the stage runs in group-seal mode.
func (b *Batch) GroupSeal() bool { return b.enc != nil }

// takeBucketLocked returns an empty bucket with capacity for a full group,
// reusing a released backing array when one is free. Caller holds b.mu.
func (b *Batch) takeBucketLocked() []*Request {
	if n := len(b.free); n > 0 {
		g := b.free[n-1]
		b.free = b.free[:n-1]
		return g
	}
	return make([]*Request, 0, b.size)
}

// recycleBucket scrubs a released bucket's member pointers and returns its
// backing array to the freelist, bounded so a burst of concurrently open
// buckets cannot pin arrays forever.
func (b *Batch) recycleBucket(g []*Request) {
	for i := range g {
		g[i] = nil
	}
	b.mu.Lock()
	if len(b.free) < 4 {
		b.free = append(b.free, g[:0])
	}
	b.mu.Unlock()
}

// GroupsSealed reports how many group envelopes the stage has released;
// GroupTxs how many member transactions those groups carried. Both 0
// outside group-seal mode.
func (b *Batch) GroupsSealed() uint64 { return b.groupsSealed.Load() }

// GroupTxs reports the member transactions released inside group envelopes.
func (b *Batch) GroupTxs() uint64 { return b.groupTxs.Load() }

// Handle implements Stage.
func (b *Batch) Handle(ctx context.Context, req *Request, next Handler) error {
	b.mu.Lock()
	if b.next == nil {
		// The downstream continuation is identical for every request of a
		// built chain; learn it once instead of re-storing a closure
		// pointer (and paying its write barrier) per admission.
		b.next = next
	}
	if b.enc != nil {
		ck := req.groupKey
		if ck == nil {
			b.mu.Unlock()
			return errNoGroupKey
		}
		req.buffered = true
		g, ok := b.groups[ck]
		if !ok {
			// A fresh bucket starts at full capacity, recycled from the
			// last released group where possible: growing a pointer slice
			// member by member costs log2(size) reallocations, copies, and
			// write-barrier work per group, all on the admission path.
			g = b.takeBucketLocked()
		}
		g = append(g, req)
		if len(g) < b.size {
			b.groups[ck] = g
			b.mu.Unlock()
			return nil
		}
		delete(b.groups, ck)
		b.mu.Unlock()
		err := b.releaseGroup(ctx, ck, g, next, req)
		b.recycleBucket(g)
		return err
	}
	req.buffered = true
	b.pending = append(b.pending, req)
	if len(b.pending) < b.size {
		b.mu.Unlock()
		return nil
	}
	group := b.pending
	b.pending = nil
	b.mu.Unlock()
	return b.release(ctx, group, next, req)
}

// Flush releases any partially-filled batch downstream. In group-seal mode
// every open (channel, epoch) bucket is sealed and released — including
// buckets stranded by an epoch rotation mid-fill, which seal under the
// epoch current at their submission. It is a no-op on an empty buffer and
// an error if the stage has never seen a request (the downstream
// continuation is learned from the first Handle call).
func (b *Batch) Flush(ctx context.Context) error {
	b.mu.Lock()
	next := b.next
	if b.enc != nil {
		groups := b.groups
		b.groups = make(map[*channelKey][]*Request)
		b.mu.Unlock()
		if len(groups) == 0 {
			return nil
		}
		if next == nil {
			return errors.New("middleware: batch flush before any submission")
		}
		var errs []error
		for ck, g := range groups {
			if err := b.releaseGroup(ctx, ck, g, next, nil); err != nil {
				errs = append(errs, err)
			}
			b.recycleBucket(g)
		}
		return errors.Join(errs...)
	}
	group := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(group) == 0 {
		return nil
	}
	if next == nil {
		return errors.New("middleware: batch flush before any submission")
	}
	return b.release(ctx, group, next, nil)
}

// Pending reports the number of buffered submissions across all open
// buckets.
func (b *Batch) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := len(b.pending)
	for _, g := range b.groups {
		n += len(g)
	}
	return n
}

// release hands a group downstream one request at a time, preserving
// submission order. Every buffered request was already acknowledged to
// its submitter, so a failure must not abandon the rest of the group:
// each member gets exactly one delivery attempt, and the joined errors
// surface to the caller (the filling submission or Flush).
//
// Tracing and exclusive latency are re-homed per member: each member's
// delivery records a "batch.release" span on the member's OWN trace (the
// trace ring documents AddSpan as safe after Finish for exactly this), and
// the whole release duration lands in the flushing request's downstream
// accumulator — so the batch stage's exclusive time stays the buffering
// bookkeeping, not the group's deliveries, and no member's work is
// attributed to the filler's trace.
func (b *Batch) release(ctx context.Context, group []*Request, next Handler, flusher *Request) error {
	// Detach the flushing caller's cancellation (values survive): the
	// buffered members were acknowledged under their own, long-gone
	// contexts, and a canceled filling request must not fail them.
	ctx = context.WithoutCancel(ctx)
	releaseStart := time.Now()
	var errs []error
	for i, req := range group {
		start := time.Now()
		err := next(ctx, req)
		d := time.Since(start)
		if tr := req.trace; tr != nil {
			tr.AddSpan("batch.release", start, d, d, err)
		}
		// The member's future gets its own delivery outcome: a failed
		// member never committed, so its submitter may legitimately
		// resubmit (unlike the flushing caller, whose error is wrapped
		// non-transient below precisely because the rest of the group DID
		// commit).
		req.complete(err)
		if err != nil {
			errs = append(errs, fmt.Errorf("request %d/%d (%s): %v", i+1, len(group), req.ID(), err))
		}
	}
	if flusher != nil {
		flusher.downstreamNanos += int64(time.Since(releaseStart))
	}
	if joined := errors.Join(errs...); joined != nil {
		// %v, not %w: the underlying errors must not leak their transient
		// marker through ErrBatchRelease, or an upstream retry stage
		// would re-run the batch and double-order committed members.
		return fmt.Errorf("%w: %v", ErrBatchRelease, joined)
	}
	return nil
}

// releaseGroup seals one (channel, epoch) bucket with a single AEAD
// invocation under the bucket's epoch key and sends the group envelope
// downstream as one synthetic transaction (BatchPrincipal, MetaBatch
// scheme + count). The group shares one fate: every member's future
// resolves with the group's outcome, and every member's trace gets a
// "batch.release" span whose exclusive time is its amortized share of the
// release. Cancellation detaching and error wrapping mirror release.
func (b *Batch) releaseGroup(ctx context.Context, ck *channelKey, group []*Request, next Handler, flusher *Request) error {
	ctx = context.WithoutCancel(ctx)
	start := time.Now()
	pp := groupPayloadsPool.Get().(*[][]byte)
	payloads := (*pp)[:0]
	for _, r := range group {
		payloads = append(payloads, r.Payload)
	}
	channel := group[0].Channel
	sealed, err := b.enc.sealGroup(ck, channel, payloads)
	// The seal consumed the payload views; scrub them before pooling so the
	// scratch does not pin member payload buffers until its next use.
	for i := range payloads {
		payloads[i] = nil
	}
	*pp = payloads
	groupPayloadsPool.Put(pp)
	relErr := err
	if relErr == nil {
		val := b.fullMeta
		if len(group) != b.size {
			val = GroupEnvelopeScheme + " n=" + strconv.Itoa(len(group))
		}
		greq := &Request{
			Channel:       channel,
			Principal:     BatchPrincipal,
			Payload:       sealed,
			Meta:          map[string]string{MetaBatch: val},
			authenticated: true,
			encrypted:     true,
			metaOwned:     true,
		}
		relErr = next(ctx, greq)
	}
	elapsed := time.Since(start)
	var wrapped error
	if relErr != nil {
		// %v, not %w: transient markers must not leak through, or an
		// upstream retry would re-run the batch stage against a group
		// whose members were already acknowledged.
		wrapped = fmt.Errorf("%w: group %s/epoch %d n=%d: %v", ErrBatchRelease, channel, ck.epoch, len(group), relErr)
	} else {
		b.groupsSealed.Add(1)
		b.groupTxs.Add(uint64(len(group)))
	}
	share := elapsed / time.Duration(len(group))
	for _, r := range group {
		if tr := r.trace; tr != nil {
			// Inclusive time is the whole group release the member rode in;
			// exclusive is its amortized share, so Σ exclusive over members
			// ≈ the release wall time.
			tr.AddSpan("batch.release", start, elapsed, share, relErr)
		}
		r.complete(wrapped)
	}
	if flusher != nil {
		flusher.downstreamNanos += int64(elapsed)
	}
	return wrapped
}
