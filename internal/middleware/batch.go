package middleware

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrBatchRelease wraps failures from a group release. It is deliberately
// permanent (never transient): members of the group were already
// acknowledged and attempted, so re-running the batch stage would
// re-buffer only the filling request and double-order the members that
// committed. The error text names each failed request by ID so operators
// can reconcile.
var ErrBatchRelease = errors.New("middleware: batch release failed")

// Batch aggregates accepted submissions and releases them downstream in
// groups of the configured size, the write-combining tier in front of the
// ordering service. A buffered request is acknowledged immediately (its
// Handle returns nil); the whole group travels downstream when the batch
// fills or Flush is called. Because any later stage would be skipped for
// the buffered members of a group, Config requires batch to be the final
// stage.
//
// Error semantics follow the ordering service's batching: failures from a
// group release surface to the flushing caller (the filling submission or
// Flush), while earlier members of the group were already acknowledged.
// Deployments that need per-submission confirmation should run batch size
// 1 or reconcile against backend commit stats.
type Batch struct {
	size int

	mu      sync.Mutex
	pending []*Request
	next    Handler
}

// NewBatch creates the batch stage with the given group size.
func NewBatch(size int) (*Batch, error) {
	if size < 1 {
		return nil, fmt.Errorf("middleware: batch needs size >= 1, got %d", size)
	}
	return &Batch{size: size}, nil
}

// Name implements Stage.
func (b *Batch) Name() string { return StageBatch }

// Handle implements Stage.
func (b *Batch) Handle(ctx context.Context, req *Request, next Handler) error {
	b.mu.Lock()
	b.next = next
	b.pending = append(b.pending, req)
	if len(b.pending) < b.size {
		b.mu.Unlock()
		return nil
	}
	group := b.pending
	b.pending = nil
	b.mu.Unlock()
	return b.release(ctx, group, next)
}

// Flush releases any partially-filled batch downstream. It is a no-op on
// an empty buffer and an error if the stage has never seen a request (the
// downstream continuation is learned from the first Handle call).
func (b *Batch) Flush(ctx context.Context) error {
	b.mu.Lock()
	group := b.pending
	next := b.next
	b.pending = nil
	b.mu.Unlock()
	if len(group) == 0 {
		return nil
	}
	if next == nil {
		return errors.New("middleware: batch flush before any submission")
	}
	return b.release(ctx, group, next)
}

// Pending reports the number of buffered submissions.
func (b *Batch) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// release hands a group downstream one request at a time, preserving
// submission order. Every buffered request was already acknowledged to
// its submitter, so a failure must not abandon the rest of the group:
// each member gets its delivery attempt, and the joined errors surface to
// the caller (the filling submission or Flush).
func (b *Batch) release(ctx context.Context, group []*Request, next Handler) error {
	// Detach the flushing caller's cancellation (values survive): the
	// buffered members were acknowledged under their own, long-gone
	// contexts, and a canceled filling request must not fail them.
	ctx = context.WithoutCancel(ctx)
	var errs []error
	for i, req := range group {
		if err := next(ctx, req); err != nil {
			errs = append(errs, fmt.Errorf("request %d/%d (%s): %v", i+1, len(group), req.ID(), err))
		}
	}
	if joined := errors.Join(errs...); joined != nil {
		// %v, not %w: the underlying errors must not leak their transient
		// marker through ErrBatchRelease, or an upstream retry stage
		// would re-run the batch and double-order committed members.
		return fmt.Errorf("%w: %v", ErrBatchRelease, joined)
	}
	return nil
}
