package middleware

import (
	"errors"
	"testing"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
)

func testEnv(t *testing.T) Env {
	t.Helper()
	key, err := dcrypto.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	return Env{
		CAKey:     key.Public(),
		Directory: StaticDirectory{},
		Log:       audit.NewLog(),
	}
}

func stageList(names ...string) Config {
	cfg := Config{}
	for _, n := range names {
		cfg.Stages = append(cfg.Stages, StageConfig{Name: n})
	}
	return cfg
}

func TestConfigBuildsFullChain(t *testing.T) {
	cfg := stageList(StageAuthn, StageEncrypt, StageAudit, StageRateLimit, StageRetry, StageBreaker, StageBatch)
	chain, err := cfg.Build(testEnv(t), nil)
	if err != nil {
		t.Fatalf("full chain rejected: %v", err)
	}
	got := chain.StageNames()
	want := []string{StageAuthn, StageEncrypt, StageAudit, StageRateLimit, StageRetry, StageBreaker, StageBatch}
	if len(got) != len(want) {
		t.Fatalf("stages = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestConfigRejectsMisordering(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty", Config{}},
		{"unknown stage", stageList("authz")},
		{"duplicate stage", stageList(StageAuthn, StageAuthn)},
		{"encrypt before authn", stageList(StageEncrypt, StageAuthn)},
		{"encrypt without authn", stageList(StageEncrypt)},
		{"ratelimit before authn", stageList(StageRateLimit, StageAuthn)},
		{"breaker before retry", stageList(StageBreaker, StageRetry)},
		{"batch not last", stageList(StageAuthn, StageBatch, StageAudit)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.cfg.Build(testEnv(t), nil); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Build = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestConfigRejectsBadParams(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"non-integer batch size", Config{Stages: []StageConfig{
			{Name: StageBatch, Params: map[string]string{"size": "many"}},
		}}},
		{"zero batch size", Config{Stages: []StageConfig{
			{Name: StageBatch, Params: map[string]string{"size": "0"}},
		}}},
		{"negative rate", Config{Stages: []StageConfig{
			{Name: StageRateLimit, Params: map[string]string{"rate": "-1"}},
		}}},
		{"bad duration", Config{Stages: []StageConfig{
			{Name: StageRetry, Params: map[string]string{"backoff": "soon"}},
		}}},
		{"zero breaker threshold", Config{Stages: []StageConfig{
			{Name: StageBreaker, Params: map[string]string{"threshold": "0"}},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.cfg.Build(testEnv(t), nil); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Build = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestConfigRejectsMissingDependencies(t *testing.T) {
	env := testEnv(t)

	noCA := env
	noCA.CAKey = dcrypto.PublicKey{}
	if _, err := stageList(StageAuthn).Build(noCA, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("authn without CA key = %v, want ErrBadConfig", err)
	}

	noDir := env
	noDir.Directory = nil
	if _, err := stageList(StageAuthn, StageEncrypt).Build(noDir, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("encrypt without directory = %v, want ErrBadConfig", err)
	}

	noLog := env
	noLog.Log = nil
	if _, err := stageList(StageAudit).Build(noLog, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("audit without log = %v, want ErrBadConfig", err)
	}
}
