package middleware

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dltprivacy/internal/anoncred"
	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/paillier"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/tee"
)

func testEnv(t *testing.T) Env {
	t.Helper()
	key, err := dcrypto.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	return Env{
		CAKey:     key.Public(),
		Directory: StaticDirectory{},
		Log:       audit.NewLog(),
	}
}

func stageList(names ...string) Config {
	cfg := Config{}
	for _, n := range names {
		cfg.Stages = append(cfg.Stages, StageConfig{Name: n})
	}
	return cfg
}

func TestConfigBuildsFullChain(t *testing.T) {
	cfg := stageList(StageAuthn, StageEncrypt, StageAudit, StageRateLimit, StageRetry, StageBreaker, StageBatch)
	chain, err := cfg.Build(testEnv(t), nil)
	if err != nil {
		t.Fatalf("full chain rejected: %v", err)
	}
	got := chain.StageNames()
	want := []string{StageAuthn, StageEncrypt, StageAudit, StageRateLimit, StageRetry, StageBreaker, StageBatch}
	if len(got) != len(want) {
		t.Fatalf("stages = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stage %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestConfigRejectsMisordering(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"empty", Config{}},
		{"unknown stage", stageList("authz")},
		{"duplicate stage", stageList(StageAuthn, StageAuthn)},
		{"encrypt before authn", stageList(StageEncrypt, StageAuthn)},
		{"encrypt without authn", stageList(StageEncrypt)},
		{"ratelimit before authn", stageList(StageRateLimit, StageAuthn)},
		{"breaker before retry", stageList(StageBreaker, StageRetry)},
		{"batch not last", stageList(StageAuthn, StageBatch, StageAudit)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.cfg.Build(testEnv(t), nil); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Build = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestConfigRejectsBadParams(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"non-integer batch size", Config{Stages: []StageConfig{
			{Name: StageBatch, Params: map[string]string{"size": "many"}},
		}}},
		{"zero batch size", Config{Stages: []StageConfig{
			{Name: StageBatch, Params: map[string]string{"size": "0"}},
		}}},
		{"negative rate", Config{Stages: []StageConfig{
			{Name: StageRateLimit, Params: map[string]string{"rate": "-1"}},
		}}},
		{"bad duration", Config{Stages: []StageConfig{
			{Name: StageRetry, Params: map[string]string{"backoff": "soon"}},
		}}},
		{"zero breaker threshold", Config{Stages: []StageConfig{
			{Name: StageBreaker, Params: map[string]string{"threshold": "0"}},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.cfg.Build(testEnv(t), nil); !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Build = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestConfigRejectsMissingDependencies(t *testing.T) {
	env := testEnv(t)

	noCA := env
	noCA.CAKey = dcrypto.PublicKey{}
	if _, err := stageList(StageAuthn).Build(noCA, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("authn without CA key = %v, want ErrBadConfig", err)
	}

	noDir := env
	noDir.Directory = nil
	if _, err := stageList(StageAuthn, StageEncrypt).Build(noDir, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("encrypt without directory = %v, want ErrBadConfig", err)
	}

	noLog := env
	noLog.Log = nil
	if _, err := stageList(StageAudit).Build(noLog, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("audit without log = %v, want ErrBadConfig", err)
	}
}

// TestConfigParamMatrix is the table covering every stage's parameter
// parsing: each rejected case asserts both the ErrBadConfig wrap and the
// operator-facing rejection message, each accepted case must build.
func TestConfigParamMatrix(t *testing.T) {
	session := func(params map[string]string) Config {
		return Config{Stages: []StageConfig{{Name: StageSession, Params: params}}}
	}
	one := func(name string, params map[string]string) Config {
		return Config{Stages: []StageConfig{{Name: name, Params: params}}}
	}
	encrypt := func(params map[string]string) Config {
		return Config{Stages: []StageConfig{
			{Name: StageAuthn},
			{Name: StageEncrypt, Params: params},
		}}
	}
	revEnv := testEnv(t)
	ca, err := pki.NewCA("matrix-ca")
	if err != nil {
		t.Fatal(err)
	}
	revEnv.Revoker = ca
	rejected := []struct {
		name    string
		cfg     Config
		env     *Env // nil: the plain test env
		wantMsg string
	}{
		// session
		{"session ttl not a duration", session(map[string]string{"ttl": "soon"}), nil, `ttl="soon" is not a duration`},
		{"session ttl zero", session(map[string]string{"ttl": "0s"}), nil, "ttl and idle must be positive"},
		{"session idle not a duration", session(map[string]string{"idle": "later"}), nil, `idle="later" is not a duration`},
		{"session idle negative", session(map[string]string{"idle": "-1m"}), nil, "ttl and idle must be positive"},
		{"session maxperprincipal not an integer", session(map[string]string{"maxperprincipal": "few"}), nil, `maxperprincipal="few" is not an integer`},
		{"session maxperprincipal negative", session(map[string]string{"maxperprincipal": "-2"}), nil, "maxperprincipal must be >= 0"},
		{"session reqauth unknown", session(map[string]string{"reqauth": "password"}), nil, `unknown request auth mode "password"`},
		{"session revokecheck unknown", session(map[string]string{"revokecheck": "eventually"}), nil, `unknown revocation check mode "eventually"`},
		{"session revokecheck without revoker", session(map[string]string{"revokecheck": "resolve"}), nil, "needs Env.Revoker"},
		{"session revokesweep without sweep mode", session(map[string]string{"revokesweep": "30s"}), nil, "only valid with revokecheck=sweep"},
		{"session revokesweep with resolve mode", session(map[string]string{"revokecheck": "resolve", "revokesweep": "30s"}), &revEnv, "only valid with revokecheck=sweep"},
		{"session revokesweep not a duration", session(map[string]string{"revokecheck": "sweep", "revokesweep": "often"}), &revEnv, `revokesweep="often" is not a duration`},
		{"session revokesweep zero", session(map[string]string{"revokecheck": "sweep", "revokesweep": "0s"}), &revEnv, "revokesweep must be positive"},
		// encrypt
		{"encrypt keyttl not a duration", encrypt(map[string]string{"keyttl": "soon"}), nil, `keyttl="soon" is not a duration`},
		{"encrypt keyttl negative", encrypt(map[string]string{"keyttl": "-5m"}), nil, "keyttl must be >= 0"},
		// ratelimit
		{"ratelimit rate not a number", one(StageRateLimit, map[string]string{"rate": "fast"}), nil, `rate="fast" is not a number`},
		{"ratelimit rate zero", one(StageRateLimit, map[string]string{"rate": "0"}), nil, "needs rate > 0"},
		{"ratelimit burst zero", one(StageRateLimit, map[string]string{"burst": "0"}), nil, "burst >= 1"},
		// retry
		{"retry attempts not an integer", one(StageRetry, map[string]string{"attempts": "some"}), nil, `attempts="some" is not an integer`},
		{"retry attempts zero", one(StageRetry, map[string]string{"attempts": "0"}), nil, "attempts >= 1"},
		{"retry backoff not a duration", one(StageRetry, map[string]string{"backoff": "soon"}), nil, `backoff="soon" is not a duration`},
		{"retry backoff negative", one(StageRetry, map[string]string{"backoff": "-1ms"}), nil, "backoff must be non-negative"},
		// breaker
		{"breaker threshold not an integer", one(StageBreaker, map[string]string{"threshold": "low"}), nil, `threshold="low" is not an integer`},
		{"breaker threshold zero", one(StageBreaker, map[string]string{"threshold": "0"}), nil, "threshold >= 1"},
		{"breaker cooldown not a duration", one(StageBreaker, map[string]string{"cooldown": "while"}), nil, `cooldown="while" is not a duration`},
		{"breaker cooldown zero", one(StageBreaker, map[string]string{"cooldown": "0s"}), nil, "cooldown > 0"},
		// batch
		{"batch size not an integer", one(StageBatch, map[string]string{"size": "many"}), nil, `size="many" is not an integer`},
		{"batch size zero", one(StageBatch, map[string]string{"size": "0"}), nil, "size >= 1"},
	}
	for _, tc := range rejected {
		t.Run(tc.name, func(t *testing.T) {
			env := testEnv(t)
			if tc.env != nil {
				env = *tc.env
			}
			_, err := tc.cfg.Build(env, nil)
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Build = %v, want ErrBadConfig", err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("rejection %q does not mention %q", err, tc.wantMsg)
			}
		})
	}

	accepted := []struct {
		name string
		cfg  Config
		env  Env
	}{
		{"session defaults", session(nil), testEnv(t)},
		{"session full params", session(map[string]string{
			"ttl": "1h", "idle": "5m", "maxperprincipal": "8",
		}), testEnv(t)},
		{"session reqauth sig", session(map[string]string{"reqauth": "sig"}), testEnv(t)},
		{"session reqauth mac", session(map[string]string{"reqauth": "mac"}), testEnv(t)},
		{"session revokecheck off without revoker", session(map[string]string{"revokecheck": "off"}), testEnv(t)},
		{"session revokecheck resolve", session(map[string]string{"revokecheck": "resolve"}), revEnv},
		{"session revokecheck sweep with interval", session(map[string]string{
			"revokecheck": "sweep", "revokesweep": "45s",
		}), revEnv},
		{"encrypt cached", encrypt(map[string]string{"keyttl": "10m"}), testEnv(t)},
		{"ratelimit fractional", one(StageRateLimit, map[string]string{"rate": "0.5", "burst": "1"}), testEnv(t)},
		{"retry zero backoff", one(StageRetry, map[string]string{"attempts": "1", "backoff": "0s"}), testEnv(t)},
	}
	for _, tc := range accepted {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.cfg.Build(tc.env, nil); err != nil {
				t.Fatalf("valid config rejected: %v", err)
			}
		})
	}
}

// TestConfigRejectsRevocationParamsWithInjectedManager pins the rule that
// a declared security control is never silently ignored: revokecheck /
// revokesweep on the session stage conflict with an Env.Sessions override
// (whose revocation setup is fixed at manager construction).
func TestConfigRejectsRevocationParamsWithInjectedManager(t *testing.T) {
	env := testEnv(t)
	mgr, err := NewSessionManager(env.CAKey, time.Hour, time.Hour, nil)
	if err != nil {
		t.Fatal(err)
	}
	env.Sessions = mgr
	for _, params := range []map[string]string{
		{"revokecheck": "resolve"},
		{"revokecheck": "off"},
		{"revokesweep": "30s"},
	} {
		cfg := Config{Stages: []StageConfig{{Name: StageSession, Params: params}}}
		_, err := cfg.Build(env, nil)
		if !errors.Is(err, ErrBadConfig) || !strings.Contains(err.Error(), "conflicts with Env.Sessions") {
			t.Fatalf("params %v with injected manager = %v, want conflict rejection", params, err)
		}
	}
	// Without the conflicting params the injected manager still works.
	cfg := Config{Stages: []StageConfig{{Name: StageSession}}}
	if _, err := cfg.Build(env, nil); err != nil {
		t.Fatalf("injected manager rejected: %v", err)
	}
}

// privacyTestKeys holds the expensive shared fixtures for the privacy
// stage matrix: an anoncred issuer key and a Paillier collector key.
var privacyTestKeys = sync.OnceValues(func() (Env, error) {
	issuer := anoncred.NewIssuer("test-issuer")
	credKey, err := issuer.RegisterAttributeSet([]string{"role=member"})
	if err != nil {
		return Env{}, err
	}
	collector, err := paillier.GenerateKey(512)
	if err != nil {
		return Env{}, err
	}
	man, err := tee.NewManufacturer()
	if err != nil {
		return Env{}, err
	}
	return Env{
		AnonCredKey: credKey,
		Aggregator:  &collector.PublicKey,
		Attestation: &AttestationPolicy{
			Manufacturer: man.PublicKey(),
			Measurement:  tee.Program{Name: "p", Version: "1"}.Measurement(),
		},
	}, nil
})

// privacyEnv is testEnv plus the privacy-stage dependencies: issuer
// attribute key, attestation policy, and Paillier collector key.
func privacyEnv(t *testing.T) Env {
	t.Helper()
	keys, err := privacyTestKeys()
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(t)
	env.AnonCredKey = keys.AnonCredKey
	env.Attestation = keys.Attestation
	env.Aggregator = keys.Aggregator
	return env
}

func TestConfigAcceptsPrivacyStages(t *testing.T) {
	anoncredStage := StageConfig{Name: StageAnonCred, Params: map[string]string{
		"attrs": "role=member", "scope": "audit",
	}}
	cases := []struct {
		name   string
		stages []StageConfig
	}{
		{"zkproof after authn", []StageConfig{
			{Name: StageAuthn}, {Name: StageZKProof}, {Name: StageEncrypt}, {Name: StageAudit},
		}},
		{"zkproof after session", []StageConfig{
			{Name: StageSession}, {Name: StageZKProof}, {Name: StageEncrypt},
		}},
		{"anoncred replaces authn", []StageConfig{
			anoncredStage, {Name: StageEncrypt},
		}},
		{"anoncred before ratelimit", []StageConfig{
			anoncredStage, {Name: StageRateLimit, Params: map[string]string{"rate": "10", "burst": "10"}},
		}},
		{"attest before encrypt", []StageConfig{
			{Name: StageAuthn}, {Name: StageAttest}, {Name: StageEncrypt},
		}},
		{"aggregate terminal", []StageConfig{
			anoncredStage, {Name: StageAudit, Params: map[string]string{"observer": "reg"}},
			{Name: StageAggregate, Params: map[string]string{"size": "3"}},
		}},
		{"flagship composition", []StageConfig{
			anoncredStage, {Name: StageZKProof}, {Name: StageAttest},
			{Name: StageEncrypt}, {Name: StageAudit},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			chain, err := (Config{Stages: tc.stages}).Build(privacyEnv(t), nil)
			if err != nil {
				t.Fatalf("valid privacy config rejected: %v", err)
			}
			got := chain.StageNames()
			for i, sc := range tc.stages {
				if got[i] != sc.Name {
					t.Fatalf("stage %d = %s, want %s", i, got[i], sc.Name)
				}
			}
		})
	}
}

func TestConfigRejectsPrivacyStageMisuse(t *testing.T) {
	anoncredStage := StageConfig{Name: StageAnonCred, Params: map[string]string{
		"attrs": "role=member", "scope": "audit",
	}}
	cases := []struct {
		name    string
		stages  []StageConfig
		wantMsg string
	}{
		{"zkproof without authenticator",
			[]StageConfig{{Name: StageZKProof}, {Name: StageEncrypt}},
			`"zkproof" needs "authn" or "session" before it`},
		{"zkproof after encrypt",
			[]StageConfig{{Name: StageAuthn}, {Name: StageEncrypt}, {Name: StageZKProof}},
			`"zkproof" must precede "encrypt"`},
		{"anoncred after authn",
			[]StageConfig{{Name: StageAuthn}, anoncredStage},
			`"anoncred" must precede "authn"`},
		{"anoncred after ratelimit",
			[]StageConfig{{Name: StageRateLimit, Params: map[string]string{"rate": "10", "burst": "10"}}, anoncredStage},
			`"anoncred" must precede "ratelimit"`},
		{"attest after encrypt",
			[]StageConfig{{Name: StageAuthn}, {Name: StageEncrypt}, {Name: StageAttest}},
			`"attest" must precede "encrypt"`},
		{"aggregate not last",
			[]StageConfig{anoncredStage, {Name: StageAggregate}, {Name: StageAudit}},
			`"aggregate" must be the final stage`},
		{"aggregate with batch",
			[]StageConfig{{Name: StageAuthn}, {Name: StageBatch}, {Name: StageAggregate}},
			`"aggregate" conflicts with "batch"`},
		{"aggregate with encrypt",
			[]StageConfig{{Name: StageAuthn}, {Name: StageEncrypt}, {Name: StageAggregate}},
			`"aggregate" conflicts with "encrypt"`},
		{"zkproof unknown param",
			[]StageConfig{{Name: StageAuthn}, {Name: StageZKProof, Params: map[string]string{"bitz": "16"}}},
			`unknown param "bitz"`},
		{"zkproof bits out of range",
			[]StageConfig{{Name: StageAuthn}, {Name: StageZKProof, Params: map[string]string{"bits": "99"}}},
			"bits must be in [1, 64]"},
		{"zkproof unknown mode",
			[]StageConfig{{Name: StageAuthn}, {Name: StageZKProof, Params: map[string]string{"mode": "bulletproof"}}},
			"unknown zkproof mode"},
		{"anoncred missing attrs",
			[]StageConfig{{Name: StageAnonCred, Params: map[string]string{"scope": "audit"}}},
			"anoncred needs attrs"},
		{"anoncred missing scope",
			[]StageConfig{{Name: StageAnonCred, Params: map[string]string{"attrs": "role=member"}}},
			"anoncred needs scope"},
		{"anoncred bad require",
			[]StageConfig{{Name: StageAnonCred, Params: map[string]string{
				"attrs": "role=member", "scope": "audit", "require": "maybe",
			}}},
			"must be one of on|off"},
		{"attest bad bind",
			[]StageConfig{{Name: StageAuthn}, {Name: StageAttest, Params: map[string]string{"bind": "sideways"}}},
			"must be one of input|output|off"},
		{"aggregate zero size",
			[]StageConfig{anoncredStage, {Name: StageAggregate, Params: map[string]string{"size": "0"}}},
			"size >= 1"},
		{"aggregate unknown mode",
			[]StageConfig{anoncredStage, {Name: StageAggregate, Params: map[string]string{"mode": "elgamal"}}},
			"unknown aggregate mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := (Config{Stages: tc.stages}).Build(privacyEnv(t), nil)
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Build = %v, want ErrBadConfig", err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("rejection %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

// TestConfigRejectsPrivacyStagesWithoutEnv pins the missing-dependency
// errors: each privacy stage names the Env field it needs.
func TestConfigRejectsPrivacyStagesWithoutEnv(t *testing.T) {
	cases := []struct {
		name    string
		stages  []StageConfig
		wantMsg string
	}{
		{"anoncred", []StageConfig{{Name: StageAnonCred, Params: map[string]string{
			"attrs": "role=member", "scope": "audit",
		}}}, "Env.AnonCredKey"},
		{"attest", []StageConfig{{Name: StageAuthn}, {Name: StageAttest}}, "Env.Attestation"},
		{"aggregate", []StageConfig{{Name: StageAuthn}, {Name: StageAggregate}}, "Env.Aggregator"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := (Config{Stages: tc.stages}).Build(testEnv(t), nil)
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("Build = %v, want ErrBadConfig", err)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("rejection %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}
