package middleware

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/telemetry"
	"dltprivacy/internal/transport"
)

// fnStage is a scriptable stage for instrumentation tests.
type fnStage struct {
	name string
	fn   func(ctx context.Context, req *Request, next Handler) error
}

func (s *fnStage) Name() string { return s.name }
func (s *fnStage) Handle(ctx context.Context, req *Request, next Handler) error {
	return s.fn(ctx, req, next)
}

// spin burns CPU for roughly d without sleeping, so stage timings stay
// meaningful even under heavy scheduler noise.
func spin(d time.Duration) {
	for start := time.Now(); time.Since(start) < d; {
	}
}

// TestExclusiveStageTiming pins the exclusive-time identity for a linear
// chain: a stage's inclusive time splits exactly into its exclusive time
// plus its direct downstream's inclusive time — both sides computed from
// the same measurements, so the assertion is exact, not approximate.
func TestExclusiveStageTiming(t *testing.T) {
	outer := &fnStage{name: "outer", fn: func(ctx context.Context, req *Request, next Handler) error {
		spin(2 * time.Millisecond)
		return next(ctx, req)
	}}
	inner := &fnStage{name: "inner", fn: func(ctx context.Context, req *Request, next Handler) error {
		spin(2 * time.Millisecond)
		return next(ctx, req)
	}}
	c := NewChain(nil, outer, inner)
	if err := c.Execute(context.Background(), &Request{Channel: "c", Principal: "p"}); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	o, i := stats[0], stats[1]
	if o.Nanos != o.ExclusiveNanos+i.Nanos {
		t.Errorf("outer inclusive %d != exclusive %d + inner inclusive %d", o.Nanos, o.ExclusiveNanos, i.Nanos)
	}
	// The innermost stage's downstream (the terminal) is uninstrumented,
	// so its exclusive and inclusive times coincide.
	if i.Nanos != i.ExclusiveNanos {
		t.Errorf("inner inclusive %d != exclusive %d", i.Nanos, i.ExclusiveNanos)
	}
	if o.ExclusiveNanos < uint64(time.Millisecond) {
		t.Errorf("outer exclusive %d implausibly small for a 2ms spin", o.ExclusiveNanos)
	}
	// The latency histogram observed the same exclusive value.
	if s := c.StageLatency("outer").Snapshot(); s.Count != 1 || s.Sum != o.ExclusiveNanos {
		t.Errorf("outer histogram sum/count = %d/%d, want %d/1", s.Sum, s.Count, o.ExclusiveNanos)
	}
}

// TestExclusiveStageTimingReentrant pins the semantics satellite: a
// re-entrant stage invoking its downstream several times (retry) must not
// have those attempts double-counted in its exclusive time, and the
// identity incl == excl + sum-of-direct-downstream-incl still holds.
func TestExclusiveStageTimingReentrant(t *testing.T) {
	const attempts = 3
	reentrant := &fnStage{name: "retry", fn: func(ctx context.Context, req *Request, next Handler) error {
		var err error
		for a := 0; a < attempts; a++ {
			spin(time.Millisecond)
			err = next(ctx, req)
		}
		return err
	}}
	inner := &fnStage{name: "inner", fn: func(ctx context.Context, req *Request, next Handler) error {
		spin(time.Millisecond)
		return next(ctx, req)
	}}
	c := NewChain(nil, reentrant, inner)
	if err := c.Execute(context.Background(), &Request{Channel: "c", Principal: "p"}); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	r, i := stats[0], stats[1]
	if i.Calls != attempts {
		t.Fatalf("inner calls = %d, want %d", i.Calls, attempts)
	}
	// All three downstream invocations accumulate before subtraction.
	if r.Nanos != r.ExclusiveNanos+i.Nanos {
		t.Errorf("retry inclusive %d != exclusive %d + inner inclusive %d (across %d attempts)",
			r.Nanos, r.ExclusiveNanos, i.Nanos, attempts)
	}
	// The inclusive sum alone would read as ~2x wall time here; the
	// exclusive sums approximate it instead.
	wall := r.Nanos
	exclSum := r.ExclusiveNanos + i.ExclusiveNanos
	if exclSum != wall {
		t.Errorf("sum of exclusive times %d != wall %d", exclSum, wall)
	}
}

// TestExclusiveStageTimingBatch covers the zero-invoke direction of
// re-entrancy: a buffering batch stage calls next zero times at
// submission, so its exclusive time equals its inclusive time — and the
// later group release (to the uninstrumented terminal) is re-homed into
// the releasing call's downstream accumulator, so the batch stage's
// exclusive time stays the buffering bookkeeping rather than absorbing
// the whole group's delivery work.
func TestExclusiveStageTimingBatch(t *testing.T) {
	var ordered atomic.Uint64
	terminal := func(context.Context, *Request) error {
		ordered.Add(1)
		return nil
	}
	b, err := NewBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChain(terminal, b)
	for n := 0; n < 2; n++ {
		if err := c.Execute(context.Background(), &Request{Channel: "c", Principal: "p"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ordered.Load(); got != 2 {
		t.Fatalf("terminal saw %d requests, want 2 after the batch released", got)
	}
	s := c.Stats()[0]
	if s.Calls != 2 {
		t.Fatalf("batch calls = %d, want 2", s.Calls)
	}
	if s.ExclusiveNanos > s.Nanos {
		t.Errorf("batch exclusive %d > inclusive %d", s.ExclusiveNanos, s.Nanos)
	}
	// The filling call's frame must have seen the release loop as
	// downstream time: exclusive is strictly less than inclusive once a
	// release has run under an instrumented Handle.
	if s.ExclusiveNanos == s.Nanos {
		t.Errorf("batch exclusive %d == inclusive %d: group release was not re-homed into the flusher's downstream time", s.ExclusiveNanos, s.Nanos)
	}
}

func TestTraceIDCodecRoundTrips(t *testing.T) {
	req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("p"),
		SessionToken: "tok", TraceID: 0xfeedface}
	for _, codec := range []string{CodecJSON, CodecBinary} {
		b, err := EncodeWireRequest(req, codec)
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		var w wireRequest
		if codec == CodecBinary {
			w, err = decodeWireRequestBinary(b)
			if err != nil {
				t.Fatalf("%s: %v", codec, err)
			}
		} else {
			if !strings.Contains(string(b), "trace") {
				t.Fatalf("json frame missing trace field: %s", b)
			}
			if err := json.Unmarshal(b, &w); err != nil {
				t.Fatal(err)
			}
		}
		if w.TraceID != req.TraceID {
			t.Errorf("%s: trace ID %#x, want %#x", codec, w.TraceID, req.TraceID)
		}
	}
	// The untraced common case stays off the JSON wire entirely.
	req.TraceID = 0
	b, err := EncodeWireRequest(req, CodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "trace") {
		t.Errorf("zero trace ID serialized: %s", b)
	}
}

// TestGatewayTracingEndToEnd drives a traced submission over the binary
// wire and asserts the trace ID survives the frame round-trip into the
// gateway's ring with per-stage spans attached.
func TestGatewayTracingEndToEnd(t *testing.T) {
	ca, ps := enroll(t, "alice")
	cfg := Config{
		Stages: []StageConfig{
			{Name: StageSession, Params: map[string]string{"ttl": "1h", "idle": "1h", "reqauth": "mac"}},
			{Name: StageAuthn},
		},
		Codec: CodecBinary,
		Trace: "1000000", // local sampler effectively off: only carried IDs below
	}
	backend := ordering.New("op", ordering.VisibilityFull)
	backend.Subscribe("deals", func(ledger.Block) error { return nil })
	gw, err := NewGateway("gw", cfg, Env{CAKey: ca.PublicKey()}, backend)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		t.Fatal(err)
	}
	grant, err := OpenSessionOverCodec(net, "alice", "gateway", ps["alice"].cert, ps["alice"].key, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}

	req := &Request{Channel: "deals", Principal: "alice", Payload: []byte("x"),
		SessionToken: grant.Token, TraceID: 0xabc123}
	MACRequest(req, grant.MacKey)
	if _, err := SubmitOverCodec(net, "alice", "gateway", req, grant.Codec); err != nil {
		t.Fatal(err)
	}
	recs := gw.Tracer().Snapshot()
	if len(recs) != 1 {
		t.Fatalf("trace ring has %d records, want 1 (the wire-carried ID)", len(recs))
	}
	rec := recs[0]
	if rec.ID != "0000000000abc123" {
		t.Fatalf("trace ID %s, want 0000000000abc123 (wire-carried)", rec.ID)
	}
	stages := make([]string, len(rec.Spans))
	for i, s := range rec.Spans {
		stages[i] = s.Stage
	}
	// Spans land in completion order: the innermost stage finishes first.
	if len(rec.Spans) != 2 || stages[0] != StageAuthn || stages[1] != StageSession {
		t.Fatalf("spans = %v, want [authn session]", stages)
	}
	if rec.DurationNanos <= 0 {
		t.Errorf("trace duration %d, want > 0", rec.DurationNanos)
	}
}

// TestGatewaySampledTracing checks the 1-in-N local sampler end to end
// and that unsampled requests carry no trace.
func TestGatewaySampledTracing(t *testing.T) {
	ca, ps := enroll(t, "alice")
	cfg := Config{
		Stages: []StageConfig{{Name: StageAuthn}},
		Trace:  "4",
	}
	backend := ordering.New("op", ordering.VisibilityFull)
	backend.Subscribe("deals", func(ledger.Block) error { return nil })
	gw, err := NewGateway("gw", cfg, Env{CAKey: ca.PublicKey()}, backend)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 16; n++ {
		req := signedRequest(t, ps["alice"], "deals", []byte(fmt.Sprintf("p%d", n)))
		if err := gw.Submit(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if got := gw.Stats().TracesSampled; got != 4 {
		t.Fatalf("sampled %d of 16 at trace=4, want 4", got)
	}
	recs := gw.Tracer().Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(recs))
	}
	for _, r := range recs {
		if len(r.Spans) != 1 || r.Spans[0].Stage != StageAuthn {
			t.Fatalf("trace %s spans = %+v, want one authn span", r.ID, r.Spans)
		}
	}
}

func TestConfigTraceValidation(t *testing.T) {
	base := []StageConfig{{Name: StageAuthn}}
	for _, bad := range []string{"0", "-3", "fast", "1.5"} {
		cfg := Config{Stages: base, Trace: bad}
		if err := cfg.validate(); !errors.Is(err, ErrBadConfig) {
			t.Errorf("trace=%q validated, want ErrBadConfig (got %v)", bad, err)
		}
	}
	for _, good := range []string{"", "off", "1", "64"} {
		cfg := Config{Stages: base, Trace: good}
		if err := cfg.validate(); err != nil {
			t.Errorf("trace=%q rejected: %v", good, err)
		}
	}
}

// TestGatewayRegisterMetrics wires a full pipeline into a registry and
// checks the Prometheus exposition carries every subsystem's families.
func TestGatewayRegisterMetrics(t *testing.T) {
	ca, ps := enroll(t, "alice", "bob")
	dir := StaticDirectory{"deals": {"alice": ps["alice"].key.Public(), "bob": ps["bob"].key.Public()}}
	shards := []ordering.Backend{
		ordering.New("op-0", ordering.VisibilityEnvelope),
		ordering.New("op-1", ordering.VisibilityEnvelope),
	}
	sharded, err := ordering.NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Stages: []StageConfig{
			{Name: StageSession, Params: map[string]string{"ttl": "1h", "idle": "1h"}},
			{Name: StageAuthn},
			{Name: StageEncrypt, Params: map[string]string{"keyttl": "1h"}},
			{Name: StageAudit},
		},
		Shards: 2,
		Trace:  "2",
	}
	gw, err := NewGateway("gw", cfg, Env{CAKey: ca.PublicKey(), Directory: dir, Log: audit.NewLog()}, sharded)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	if err := gw.RegisterMetrics(reg); err != nil {
		t.Fatal(err)
	}
	// Re-registering the same gateway must fail loudly, not double-count.
	if err := gw.RegisterMetrics(reg); err == nil {
		t.Fatal("second RegisterMetrics into the same registry succeeded")
	}
	sharded.Subscribe("deals", func(ledger.Block) error { return nil })
	for n := 0; n < 4; n++ {
		if err := gw.Submit(context.Background(), signedRequest(t, ps["alice"], "deals", []byte(fmt.Sprintf("p%d", n)))); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`confmw_stage_latency_seconds_bucket{stage="session",le="+Inf"}`,
		`confmw_stage_calls_total{stage="authn"} 4`,
		"confmw_gateway_submitted_total 4",
		"confmw_gateway_ordered_total 4",
		"confmw_gateway_rejected_total 0",
		"confmw_sessions_live 0",
		"confmw_sessions_opened_total 0",
		"confmw_key_epochs_rotated_total 1",
		`confmw_shard_routed_txs_total{shard="`,
		"confmw_revocation_sweeps_total 0",
		"confmw_traces_sampled_total 2",
		"confmw_backend_committed_blocks_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", out)
	}
}

// TestGatewayStatsConsistencyUnderRace is the snapshot-consistency
// satellite: submitters, session churners, and closers hammer the gateway
// while a poller reads Stats(), asserting every total is monotonic across
// polls and the cross-counter invariants hold in every snapshot —
// sessions opened >= expired+evicted+revoked, and per shard routed txs
// >= delivered blocks (single subscriber, one-tx blocks). Run with -race
// this also proves the snapshot path is data-race free.
func TestGatewayStatsConsistencyUnderRace(t *testing.T) {
	ca, ps := enroll(t, "alice", "bob")
	shards := []ordering.Backend{
		ordering.New("op-0", ordering.VisibilityFull),
		ordering.New("op-1", ordering.VisibilityFull),
	}
	sharded, err := ordering.NewSharded(shards)
	if err != nil {
		t.Fatal(err)
	}
	channels := []string{"c0", "c1", "c2", "c3"}
	for _, ch := range channels {
		sharded.Subscribe(ch, func(ledger.Block) error { return nil })
	}
	cfg := Config{
		Stages: []StageConfig{
			{Name: StageSession, Params: map[string]string{"ttl": "1h", "idle": "1h", "reqauth": "mac", "maxperprincipal": "1"}},
			{Name: StageAuthn},
		},
		Shards: 2,
		Trace:  "16",
	}
	gw, err := NewGateway("gw", cfg, Env{CAKey: ca.PublicKey()}, sharded)
	if err != nil {
		t.Fatal(err)
	}
	mgr := gw.Sessions()
	grant, err := mgr.Open(mustTestHello(t, ps["bob"]))
	if err != nil {
		t.Fatal(err)
	}

	const iters = 400
	var workers sync.WaitGroup
	// Submitters: MAC-authenticated session traffic from bob across all
	// channels and both shards.
	for w := 0; w < 2; w++ {
		workers.Add(1)
		go func(seed int) {
			defer workers.Done()
			for i := 0; i < iters; i++ {
				req := &Request{
					Channel: channels[(seed+i)%len(channels)], Principal: "bob",
					Payload: []byte{byte(i), byte(seed)}, SessionToken: grant.Token,
				}
				MACRequest(req, grant.MacKey)
				// bob's session may be closed by the closer below mid-run;
				// rejections are part of the churn being measured.
				_ = gw.Submit(context.Background(), req)
			}
		}(w)
	}
	// Churner: alice opens sessions past her cap of 1, forcing evictions.
	workers.Add(1)
	go func() {
		defer workers.Done()
		for i := 0; i < iters/4; i++ {
			if _, err := mgr.Open(mustTestHello(t, ps["alice"])); err != nil {
				t.Errorf("open: %v", err)
				return
			}
		}
	}()
	workersDone := make(chan struct{})
	go func() { workers.Wait(); close(workersDone) }()
	// Poller: every snapshot must be internally consistent and monotonic
	// against the previous one. It runs until the workers finish, then
	// takes one final racing-free look.
	var pollerDone sync.WaitGroup
	pollerDone.Add(1)
	go func() {
		defer pollerDone.Done()
		var prev GatewayStats
		for done := false; !done; {
			select {
			case <-workersDone:
				done = true
			default:
			}
			s := gw.Stats()
			if s.Submitted < prev.Submitted || s.Ordered < prev.Ordered || s.Rejected < prev.Rejected {
				t.Errorf("gateway totals went backwards: %+v then %+v", prev, s)
			}
			if s.Sessions != nil {
				ss := s.Sessions
				if ss.Opened < ss.Expired+ss.Evicted+ss.Revoked {
					t.Errorf("session invariant violated: opened %d < expired %d + evicted %d + revoked %d",
						ss.Opened, ss.Expired, ss.Evicted, ss.Revoked)
				}
				if prev.Sessions != nil && ss.Opened < prev.Sessions.Opened {
					t.Errorf("sessions opened went backwards: %d then %d", prev.Sessions.Opened, ss.Opened)
				}
			}
			for i, sh := range s.Shards {
				if sh.RoutedTxs < sh.DeliveredBlocks {
					t.Errorf("shard %d invariant violated: routed %d < delivered %d", i, sh.RoutedTxs, sh.DeliveredBlocks)
				}
				if len(prev.Shards) > i && sh.RoutedTxs < prev.Shards[i].RoutedTxs {
					t.Errorf("shard %d routed went backwards: %d then %d", i, prev.Shards[i].RoutedTxs, sh.RoutedTxs)
				}
			}
			prev = s
			runtime.Gosched()
		}
	}()
	pollerDone.Wait()

	// Final snapshot sanity: everything submitted was either ordered or
	// rejected, and the session churn showed up.
	s := gw.Stats()
	if s.Submitted+s.Rejected != 2*iters {
		t.Errorf("submitted %d + rejected %d != %d requests sent", s.Submitted, s.Rejected, 2*iters)
	}
	if s.Sessions.Evicted == 0 {
		t.Errorf("cap churner produced no evictions: %+v", s.Sessions)
	}
}

func mustTestHello(t *testing.T, p *principal) SessionHello {
	t.Helper()
	hello, err := NewSessionHelloAt(p.name, p.cert, p.key, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	return hello
}
