package middleware

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// The stage registry replaces the closed switch that Config.validate and
// buildStage used to hand-maintain: every stage — built-in or added later —
// registers a constructor plus declarative metadata, and the config engine
// walks the registry generically. Ordering rules, parameter vocabularies,
// and conflict sets live next to the stage they describe instead of inside
// one central validator, following the aspect-oriented middleware model of
// keeping each cross-cutting concern a self-contained pluggable module.

// paramSpec declares one parameter a stage accepts. Config rejects
// parameters outside a stage's declared vocabulary at validation time, so a
// typoed knob fails construction instead of being silently ignored.
type paramSpec struct {
	key   string
	usage string
}

// orderRule is one pairwise ordering constraint: when both stages appear in
// a pipeline, one must come earlier. why is the operator-facing rationale
// appended to the rejection message.
type orderRule struct {
	other string
	why   string
}

// conflictRule declares a stage that must not share a pipeline with the
// declaring stage.
type conflictRule struct {
	other string
	why   string
}

// stageDef is a registry entry: the stage's name (also its telemetry label
// in StageStats and the confmw_stage_latency_seconds histograms), its
// parameter vocabulary, its declarative ordering constraints, and the
// constructor the build engine invokes.
type stageDef struct {
	name   string
	desc   string
	params []paramSpec

	// follows lists stages at least one of which must appear earlier in
	// the pipeline (satisfied also by a stage whose countsAs names a
	// member of the list). followWhy is the rejection rationale.
	follows   []string
	followWhy string
	// after: when both are present, after[i].other must come earlier than
	// this stage.
	after []orderRule
	// before: when both are present, this stage must come earlier than
	// before[i].other.
	before []orderRule
	// conflicts: these stages must not share a pipeline with this one.
	conflicts []conflictRule
	// terminal marks a stage that must be the final one; terminalWhy is
	// the parenthetical in the rejection message.
	terminal    bool
	terminalWhy string
	// countsAs names a built-in role this stage can stand in for when
	// other stages declare follows-requirements (e.g. anoncred counts as
	// authn: it authenticates the request, so encrypt accepts it as the
	// verifier it needs upstream).
	countsAs string

	// build constructs the stage. Parameter values arrive pre-declared in
	// p; errors are returned bare — the engine wraps them uniformly as
	// "stage <name>: <err>" under ErrBadConfig.
	build func(p *params, sc StageConfig, env Env) (Stage, error)

	paramSet map[string]bool // derived at registration
}

func (d *stageDef) allowsParam(key string) bool { return d.paramSet[key] }

func (d *stageDef) paramNames() []string {
	names := make([]string, len(d.params))
	for i, ps := range d.params {
		names[i] = ps.key
	}
	return names
}

var (
	registryMu sync.RWMutex
	registry   = map[string]*stageDef{}
)

// registerStage installs a stage definition, rejecting duplicates,
// malformed definitions, and ordering constraints that would make some
// pipeline both required and impossible (a cycle in the precedence graph).
// Built-ins register through mustRegisterStage at init; the error form
// exists so registration failures are testable.
func registerStage(def stageDef) error {
	if def.name == "" || strings.ContainsAny(def.name, " |()=,") {
		return fmt.Errorf("middleware: invalid stage name %q", def.name)
	}
	if def.build == nil {
		return fmt.Errorf("middleware: stage %q has no constructor", def.name)
	}
	def.paramSet = make(map[string]bool, len(def.params))
	for _, ps := range def.params {
		if def.paramSet[ps.key] {
			return fmt.Errorf("middleware: stage %q declares param %q twice", def.name, ps.key)
		}
		def.paramSet[ps.key] = true
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[def.name]; dup {
		return fmt.Errorf("middleware: stage %q already registered", def.name)
	}
	registry[def.name] = &def
	if cyc := precedenceCycle(); cyc != nil {
		delete(registry, def.name)
		return fmt.Errorf("middleware: stage %q creates an ordering cycle: %s", def.name, strings.Join(cyc, " -> "))
	}
	return nil
}

// mustRegisterStage is the init-time form: a bad built-in definition is a
// programming error, not a runtime condition.
func mustRegisterStage(def stageDef) {
	if err := registerStage(def); err != nil {
		panic(err)
	}
}

// removeStage uninstalls a definition; it exists for registry tests, which
// must not leak scratch stages into the process-wide vocabulary.
func removeStage(name string) {
	registryMu.Lock()
	delete(registry, name)
	registryMu.Unlock()
}

func lookupStage(name string) *stageDef {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return registry[name]
}

// precedenceCycle looks for a cycle in the directed precedence graph formed
// by every registered after/before rule ("u -> v" meaning u must precede
// v). Edges may reference names that are not registered yet — rules are
// only enforced against stages present in a pipeline — but a cycle among
// the declared edges means some stage combination is unconfigurable, which
// is a definition bug worth failing at registration. Caller holds
// registryMu.
func precedenceCycle() []string {
	edges := map[string][]string{}
	for _, d := range registry {
		for _, r := range d.after {
			edges[r.other] = append(edges[r.other], d.name)
		}
		for _, r := range d.before {
			edges[d.name] = append(edges[d.name], r.other)
		}
	}
	const (
		visiting = 1
		done     = 2
	)
	state := map[string]int{}
	var path []string
	var walk func(n string) []string
	walk = func(n string) []string {
		state[n] = visiting
		path = append(path, n)
		for _, m := range edges[n] {
			switch state[m] {
			case visiting:
				return append(append([]string(nil), path...), m)
			case 0:
				if cyc := walk(m); cyc != nil {
					return cyc
				}
			}
		}
		state[n] = done
		path = path[:len(path)-1]
		return nil
	}
	for n := range edges {
		if state[n] == 0 {
			if cyc := walk(n); cyc != nil {
				return cyc
			}
		}
	}
	return nil
}

// RegisteredStages returns the sorted names of every registered stage —
// the pipeline vocabulary a Config may draw from.
func RegisteredStages() []string {
	registryMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}

// StageUsage renders the registry as operator-facing help text: one line
// per stage with its description, followed by its parameter vocabulary.
func StageUsage() string {
	var b strings.Builder
	for _, name := range RegisteredStages() {
		def := lookupStage(name)
		if def == nil {
			continue
		}
		fmt.Fprintf(&b, "  %-10s %s\n", def.name, def.desc)
		for _, ps := range def.params {
			fmt.Fprintf(&b, "    %-12s %s\n", ps.key, ps.usage)
		}
	}
	return b.String()
}

// ParseStages parses the compact textual pipeline form used by the
// cmd/gateway -stages flag: stage specs separated by "|", each either
// NAME, NAME=MODE (shorthand for NAME(mode=MODE)), or
// NAME(key=value,key=value,...). Values keep everything after the first
// "=", so composite values like attrs=role=member survive. Unknown stage
// names are rejected here with the registered-stage list, keeping new
// stages discoverable from the CLI; everything else (ordering, parameter
// values) is validated by Config.Build.
func ParseStages(s string) ([]StageConfig, error) {
	var out []StageConfig
	for _, seg := range strings.Split(s, "|") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			return nil, fmt.Errorf("%w: empty stage spec in %q", ErrBadConfig, s)
		}
		name := seg
		var stageParams map[string]string
		if i := strings.IndexByte(seg, '('); i >= 0 {
			if !strings.HasSuffix(seg, ")") {
				return nil, fmt.Errorf("%w: stage spec %q: missing closing parenthesis", ErrBadConfig, seg)
			}
			name = seg[:i]
			if inner := seg[i+1 : len(seg)-1]; inner != "" {
				stageParams = make(map[string]string)
				for _, kv := range strings.Split(inner, ",") {
					key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
					if !ok || key == "" {
						return nil, fmt.Errorf("%w: stage spec %q: param %q is not key=value", ErrBadConfig, seg, kv)
					}
					stageParams[key] = val
				}
			}
		} else if n, mode, ok := strings.Cut(seg, "="); ok {
			name = n
			stageParams = map[string]string{"mode": mode}
		}
		if lookupStage(name) == nil {
			return nil, fmt.Errorf("%w: unknown stage %q (registered stages: %s)",
				ErrBadConfig, name, strings.Join(RegisteredStages(), ", "))
		}
		out = append(out, StageConfig{Name: name, Params: stageParams})
	}
	return out, nil
}

// quotedList renders a name list for rejection messages: `"a" or "b"`.
func quotedList(names []string, sep string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = fmt.Sprintf("%q", n)
	}
	return strings.Join(quoted, sep)
}

// ---------------------------------------------------------------------------
// Built-in stage definitions. Each entry carries the ordering rules the
// package documentation promises, with the exact operator-facing rationale
// the pre-registry validator used.

const whyPrincipalBuckets = "buckets are keyed by principal, which must be verified first"

func init() {
	mustRegisterStage(stageDef{
		name: StageSession,
		desc: "persistent sessions: verify the certificate once, then token/MAC requests",
		params: []paramSpec{
			{"ttl", "session lifetime (duration, default 10m)"},
			{"idle", "idle timeout (duration, default 2m)"},
			{"maxperprincipal", "live-session cap per principal (default 0 = unlimited)"},
			{"reqauth", "steady-state request auth: sig|mac (default sig)"},
			{"revokecheck", "revocation checks: off|resolve|sweep (default off)"},
			{"revokesweep", "sweep interval (duration, only with revokecheck=sweep)"},
		},
		build: buildSessionStage,
	})
	mustRegisterStage(stageDef{
		name: StageAuthn,
		desc: "per-request certificate + signature verification against the CA key",
		after: []orderRule{
			{StageSession, "token-bearing requests short-circuit the full PKI check"},
		},
		build: func(p *params, sc StageConfig, env Env) (Stage, error) {
			if env.CAKey.IsZero() {
				return nil, errors.New("Env.CAKey is required")
			}
			return NewAuthn(env.CAKey, env.Now), nil
		},
	})
	mustRegisterStage(stageDef{
		name: StageEncrypt,
		desc: "seal payloads into channel-member envelopes (Env.Directory)",
		params: []paramSpec{
			{"keyttl", "wrapped-key cache lifetime (duration, default 0 = fresh key per request)"},
		},
		follows:   []string{StageAuthn, StageSession},
		followWhy: "never seal an envelope for an unverified submitter",
		build: func(p *params, sc StageConfig, env Env) (Stage, error) {
			ttl := p.duration("keyttl", 0)
			if p.err != nil {
				return nil, p.err
			}
			if ttl < 0 {
				return nil, fmt.Errorf("keyttl must be >= 0, got %v (0 disables the key cache)", ttl)
			}
			if ttl > 0 {
				return NewCachedEncrypt(env.Directory, ttl, env.Now)
			}
			return NewEncrypt(env.Directory)
		},
	})
	mustRegisterStage(stageDef{
		name: StageAudit,
		desc: "leakage accounting: record what the observer could see (Env.Log)",
		params: []paramSpec{
			{"observer", `leakage-log observer name (default "gateway")`},
			{"auditasync", "async ring depth (default 0 = record synchronously on the submit path)"},
		},
		build: func(p *params, sc StageConfig, env Env) (Stage, error) {
			observer := p.str("observer", "gateway")
			depth := p.intVal("auditasync", 0)
			if p.err != nil {
				return nil, p.err
			}
			if depth < 0 {
				return nil, fmt.Errorf("auditasync must be >= 0, got %d (0 records synchronously)", depth)
			}
			if depth > 0 {
				return NewAsyncAudit(env.Log, observer, depth)
			}
			return NewAudit(env.Log, observer)
		},
	})
	mustRegisterStage(stageDef{
		name: StageRateLimit,
		desc: "token-bucket limiting keyed by verified principal",
		params: []paramSpec{
			{"rate", "tokens per second (default 100)"},
			{"burst", "bucket capacity (default 10)"},
		},
		after: []orderRule{
			{StageAuthn, whyPrincipalBuckets},
			{StageSession, whyPrincipalBuckets},
		},
		build: func(p *params, sc StageConfig, env Env) (Stage, error) {
			return NewRateLimit(p.floatVal("rate", 100), p.floatVal("burst", 10), env.Now)
		},
	})
	mustRegisterStage(stageDef{
		name: StageRetry,
		desc: "re-attempt transient downstream failures with backoff",
		params: []paramSpec{
			{"attempts", "total attempts (default 3)"},
			{"backoff", "base backoff (duration, default 5ms)"},
		},
		build: func(p *params, sc StageConfig, env Env) (Stage, error) {
			return NewRetry(p.intVal("attempts", 3), p.duration("backoff", 5*time.Millisecond), env.Sleep)
		},
	})
	mustRegisterStage(stageDef{
		name: StageBreaker,
		desc: "circuit breaker over downstream failures",
		params: []paramSpec{
			{"threshold", "consecutive failures before opening (default 5)"},
			{"cooldown", "open-state duration before a probe (duration, default 1s)"},
		},
		after: []orderRule{
			{StageRetry, "each retry attempt must consult the breaker"},
		},
		build: func(p *params, sc StageConfig, env Env) (Stage, error) {
			return NewBreaker(p.intVal("threshold", 5), p.duration("cooldown", time.Second), env.Now)
		},
	})
	mustRegisterStage(stageDef{
		name: StageBatch,
		desc: "write-combine accepted submissions into downstream groups",
		params: []paramSpec{
			{"size", "group size (default 8)"},
			{"groupseal", "seal each (channel, epoch) group with one AEAD invocation: on|off (default off; needs encrypt keyttl > 0)"},
		},
		terminal:    true,
		terminalWhy: "any later stage would be skipped for batched requests",
		build: func(p *params, sc StageConfig, env Env) (Stage, error) {
			p.enum("groupseal", "off", "on", "off")
			if p.err != nil {
				return nil, p.err
			}
			return NewBatch(p.intVal("size", 8))
		},
	})
}

// buildSessionStage mirrors the session stage's historical construction
// flow exactly: parameter errors, dependency errors, and the injected-
// manager conflict keep their original precedence and wording.
func buildSessionStage(p *params, sc StageConfig, env Env) (Stage, error) {
	mgr := env.Sessions
	if mgr != nil && len(sc.Params) > 0 {
		// An injected manager carries its own ttl/idle/cap/revocation
		// setup; a knob that would be silently ignored here is a
		// misconfiguration, not a default.
		for key := range sc.Params {
			return nil, fmt.Errorf("param %s conflicts with Env.Sessions — configure the injected manager at construction instead", key)
		}
	}
	if mgr == nil {
		if env.CAKey.IsZero() {
			return nil, errors.New("Env.CAKey is required")
		}
		ttl := p.duration("ttl", 10*time.Minute)
		idle := p.duration("idle", 2*time.Minute)
		maxPer := p.intVal("maxperprincipal", 0)
		reqauth, aerr := ParseRequestAuthMode(p.str("reqauth", "sig"))
		if aerr != nil {
			return nil, aerr
		}
		mode, merr := ParseRevokeCheckMode(p.str("revokecheck", "off"))
		if merr != nil {
			return nil, merr
		}
		sweepEvery := p.duration("revokesweep", 0)
		if p.err != nil {
			return nil, p.err
		}
		if maxPer < 0 {
			return nil, fmt.Errorf("maxperprincipal must be >= 0, got %d", maxPer)
		}
		if mode != RevokeCheckOff && env.Revoker == nil {
			return nil, fmt.Errorf("revokecheck=%v needs Env.Revoker", mode)
		}
		if _, set := sc.Params["revokesweep"]; set {
			if mode != RevokeCheckSweep {
				return nil, fmt.Errorf("revokesweep is only valid with revokecheck=sweep, got revokecheck=%v", mode)
			}
			if sweepEvery <= 0 {
				return nil, fmt.Errorf("revokesweep must be positive, got %v", sweepEvery)
			}
		}
		var err error
		mgr, err = NewSessionManager(env.CAKey, ttl, idle, env.Now,
			WithMaxPerPrincipal(maxPer),
			WithRequestAuth(reqauth),
			WithRevocationChecks(env.Revoker, mode, sweepEvery))
		if err != nil {
			return nil, err
		}
	}
	return NewSession(mgr)
}
