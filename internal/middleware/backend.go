package middleware

import (
	"errors"
	"fmt"

	"dltprivacy/internal/ledger"
	"dltprivacy/internal/platform/corda"
	"dltprivacy/internal/platform/fabric"
	"dltprivacy/internal/platform/quorum"
)

// FabricBackend commits ordered transactions into a Fabric-model network
// by invoking an installed chaincode function with (txID, payload) —
// payloads already sealed by the encrypt stage land on the channel ledger
// as envelopes only members can open.
type FabricBackend struct {
	net       *fabric.Network
	org       string
	chaincode string
	fn        string
	endorsers []string
}

// NewFabricBackend creates the adapter. org is the invoking organization,
// chaincode/fn the installed entry point (fn receives key and value args),
// endorsers the orgs satisfying the channel policy.
func NewFabricBackend(net *fabric.Network, org, chaincode, fn string, endorsers []string) (*FabricBackend, error) {
	if net == nil || org == "" || chaincode == "" || fn == "" {
		return nil, errors.New("middleware: fabric backend needs network, org, chaincode, and fn")
	}
	return &FabricBackend{net: net, org: org, chaincode: chaincode, fn: fn, endorsers: endorsers}, nil
}

// Name implements Backend.
func (f *FabricBackend) Name() string { return "fabric" }

// Commit implements Backend.
func (f *FabricBackend) Commit(b ledger.Block) error {
	for _, tx := range b.Txs {
		args := [][]byte{[]byte(tx.ID()), tx.Payload}
		if _, err := f.net.Invoke(tx.Channel, f.org, f.chaincode, f.fn, args, f.endorsers); err != nil {
			return fmt.Errorf("fabric commit tx %s: %w", tx.ID(), err)
		}
	}
	return nil
}

// CordaBackend commits ordered transactions into a Corda-model network by
// issuing one state per transaction, owned by the custodian party and
// shared with the configured participants.
type CordaBackend struct {
	net          *corda.Network
	issuer       string
	owner        string
	participants []string
}

// NewCordaBackend creates the adapter: issuer initiates the flow, owner
// receives the issued states, participants see them.
func NewCordaBackend(net *corda.Network, issuer, owner string, participants []string) (*CordaBackend, error) {
	if net == nil || issuer == "" || owner == "" {
		return nil, errors.New("middleware: corda backend needs network, issuer, and owner")
	}
	return &CordaBackend{net: net, issuer: issuer, owner: owner, participants: participants}, nil
}

// Name implements Backend.
func (c *CordaBackend) Name() string { return "corda" }

// Commit implements Backend.
func (c *CordaBackend) Commit(b ledger.Block) error {
	for _, tx := range b.Txs {
		if _, err := c.net.Issue(c.issuer, c.owner, tx.Payload, c.participants); err != nil {
			return fmt.Errorf("corda commit tx %s: %w", tx.ID(), err)
		}
	}
	return nil
}

// QuorumBackend commits ordered transactions into a Quorum-model network
// as private transactions keyed by transaction ID: the public chain
// records payload hash, sender, and participant list; payloads travel
// through the participants' private transaction managers.
type QuorumBackend struct {
	net          *quorum.Network
	from         string
	participants []string
}

// NewQuorumBackend creates the adapter. from is the submitting node,
// participants the private recipient set.
func NewQuorumBackend(net *quorum.Network, from string, participants []string) (*QuorumBackend, error) {
	if net == nil || from == "" {
		return nil, errors.New("middleware: quorum backend needs network and sending node")
	}
	return &QuorumBackend{net: net, from: from, participants: participants}, nil
}

// Name implements Backend.
func (q *QuorumBackend) Name() string { return "quorum" }

// Commit implements Backend.
func (q *QuorumBackend) Commit(b ledger.Block) error {
	for _, tx := range b.Txs {
		if _, err := q.net.SendPrivate(q.from, q.participants, tx.ID(), tx.Payload); err != nil {
			return fmt.Errorf("quorum commit tx %s: %w", tx.ID(), err)
		}
	}
	return nil
}

// Compile-time checks.
var (
	_ Backend = (*FabricBackend)(nil)
	_ Backend = (*CordaBackend)(nil)
	_ Backend = (*QuorumBackend)(nil)
)
