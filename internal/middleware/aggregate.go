package middleware

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"dltprivacy/internal/paillier"
)

// StageAggregate is the terminal homomorphic-aggregation stage: same-
// channel submissions carry Paillier ciphertexts that are combined into
// one running encrypted sum, and only the aggregate travels downstream.
// Individual contributions never reach the ordering service — the
// collector (Env.Aggregator's key holder) can decrypt only the total.
const StageAggregate = "aggregate"

// MetaAggregate records the scheme and contribution count on a released
// aggregate transaction.
const MetaAggregate = "aggregate"

// AggregatePrincipal is the creator recorded on released aggregate
// transactions: individual contributors never appear on the ledger.
const AggregatePrincipal = "aggregated"

// aggregandScheme versions the aggregand wire format.
const aggregandScheme = "paillier/v1"

// maxAggregandBytes caps the ciphertext size: 8192-bit moduli are far
// beyond any key this repo generates.
const maxAggregandBytes = 2048

// Errors returned by the aggregate stage.
var (
	// ErrBadAggregand is returned when a submission payload is not a
	// well-formed Paillier aggregand for the collector's key.
	ErrBadAggregand = errors.New("middleware: aggregate: payload is not a paillier aggregand")
	// ErrAggregateRelease wraps failures from releasing a completed
	// aggregate downstream. Like ErrBatchRelease it is deliberately
	// permanent: the combined contributions were already acknowledged, so
	// re-running the stage would double-count them.
	ErrAggregateRelease = errors.New("middleware: aggregate release failed")
)

// wireAggregand is the payload format the stage consumes.
type wireAggregand struct {
	Scheme string `json:"scheme"`
	C      []byte `json:"c"`
}

// Aggregate buffers per-channel Paillier ciphertexts, homomorphically
// adding each accepted submission into a running sum. A buffered
// submission is acknowledged immediately (its Handle returns nil); when
// the group reaches the configured size — or Flush is called — one
// synthetic request carrying the encrypted sum travels downstream under
// the AggregatePrincipal. Because any later stage would be skipped for
// aggregated requests, Config requires aggregate to be the final stage,
// and it conflicts with batch (both own the held-request release path).
type Aggregate struct {
	pk   *paillier.PublicKey
	size int

	mu      sync.Mutex
	pending map[string]*aggGroup
	next    Handler
}

// aggGroup is one channel's open aggregation window.
type aggGroup struct {
	sum   paillier.Ciphertext
	count int
	req   *Request // the filling request, mutated into the release vehicle
}

// NewAggregate creates the stage for the collector's public key and group
// size.
func NewAggregate(pk *paillier.PublicKey, size int) (*Aggregate, error) {
	if pk == nil {
		return nil, errors.New("middleware: aggregate needs the collector key (Env.Aggregator)")
	}
	if size < 1 {
		return nil, fmt.Errorf("middleware: aggregate needs size >= 1, got %d", size)
	}
	return &Aggregate{pk: pk, size: size, pending: make(map[string]*aggGroup)}, nil
}

// Name implements Stage.
func (a *Aggregate) Name() string { return StageAggregate }

// Pending reports the number of contributions buffered across all open
// groups.
func (a *Aggregate) Pending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, g := range a.pending {
		n += g.count
	}
	return n
}

// Handle implements Stage.
func (a *Aggregate) Handle(ctx context.Context, req *Request, next Handler) error {
	ct, err := a.decodeAggregand(req.Payload)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadAggregand, err)
	}
	a.mu.Lock()
	a.next = next
	g := a.pending[req.Channel]
	if g == nil {
		g = &aggGroup{sum: ct}
		a.pending[req.Channel] = g
	} else {
		sum, aerr := a.pk.Add(g.sum, ct)
		if aerr != nil {
			a.mu.Unlock()
			return fmt.Errorf("%w: %v", ErrBadAggregand, aerr)
		}
		g.sum = sum
	}
	g.count++
	g.req = req
	if g.count < a.size {
		a.mu.Unlock()
		return nil // acknowledged: held for aggregation
	}
	delete(a.pending, req.Channel)
	a.mu.Unlock()
	return a.release(ctx, g, next)
}

// Flush releases every partially-filled aggregation group downstream. It
// is a no-op on an empty buffer and an error if the stage has never seen
// a request (the downstream continuation is learned from the first Handle
// call).
func (a *Aggregate) Flush(ctx context.Context) error {
	a.mu.Lock()
	groups := a.pending
	next := a.next
	a.pending = make(map[string]*aggGroup)
	a.mu.Unlock()
	if len(groups) == 0 {
		return nil
	}
	if next == nil {
		return errors.New("middleware: aggregate flush before any submission")
	}
	var errs []error
	for _, g := range groups {
		if err := a.release(ctx, g, next); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// release sends one group's encrypted sum downstream as a synthetic
// request derived from the filling submission. The flushing caller's
// cancellation is detached, mirroring batch: earlier contributors were
// acknowledged under their own, long-gone contexts.
func (a *Aggregate) release(ctx context.Context, g *aggGroup, next Handler) error {
	req := g.req
	payload, err := json.Marshal(wireAggregand{Scheme: aggregandScheme, C: g.sum.C.Bytes()})
	if err != nil {
		return fmt.Errorf("%w: %v", ErrAggregateRelease, err)
	}
	req.Payload = payload
	req.Principal = AggregatePrincipal
	// Fresh Meta: the filling contributor's annotations (a pseudonym, an
	// anoncred note) must not ride onto the anonymized aggregate.
	req.Meta = map[string]string{MetaAggregate: fmt.Sprintf("%s n=%d", aggregandScheme, g.count)}
	if err := next(context.WithoutCancel(ctx), req); err != nil {
		// %v, not %w: transient markers must not leak through, or an
		// upstream retry would re-run the stage and double-count.
		return fmt.Errorf("%w: %v", ErrAggregateRelease, err)
	}
	return nil
}

// decodeAggregand parses and validates one contribution against the
// collector's key, mirroring paillier's own ciphertext checks so a bad
// first contribution is rejected immediately instead of poisoning the
// group for the next submitter.
func (a *Aggregate) decodeAggregand(payload []byte) (paillier.Ciphertext, error) {
	var w wireAggregand
	if err := json.Unmarshal(payload, &w); err != nil {
		return paillier.Ciphertext{}, err
	}
	if w.Scheme != aggregandScheme {
		return paillier.Ciphertext{}, fmt.Errorf("scheme %q, want %q", w.Scheme, aggregandScheme)
	}
	if len(w.C) == 0 || len(w.C) > maxAggregandBytes {
		return paillier.Ciphertext{}, fmt.Errorf("ciphertext must be 1..%d bytes, got %d", maxAggregandBytes, len(w.C))
	}
	c := new(big.Int).SetBytes(w.C)
	if c.Sign() <= 0 || c.Cmp(a.pk.N2) >= 0 {
		return paillier.Ciphertext{}, errors.New("ciphertext outside the collector's group")
	}
	return paillier.Ciphertext{C: c}, nil
}

// EncodeAggregand is the client-side counterpart of the aggregate stage:
// it encrypts v under the collector's public key and returns the payload
// to submit.
func EncodeAggregand(pk *paillier.PublicKey, v *big.Int) ([]byte, error) {
	ct, err := pk.Encrypt(v)
	if err != nil {
		return nil, err
	}
	return json.Marshal(wireAggregand{Scheme: aggregandScheme, C: ct.C.Bytes()})
}

// DecryptAggregate opens a released aggregate payload with the
// collector's private key, returning the plaintext sum.
func DecryptAggregate(sk *paillier.PrivateKey, payload []byte) (*big.Int, error) {
	var w wireAggregand
	if err := json.Unmarshal(payload, &w); err != nil {
		return nil, err
	}
	if w.Scheme != aggregandScheme {
		return nil, fmt.Errorf("middleware: aggregate payload scheme %q, want %q", w.Scheme, aggregandScheme)
	}
	return sk.Decrypt(paillier.Ciphertext{C: new(big.Int).SetBytes(w.C)})
}

func init() {
	mustRegisterStage(stageDef{
		name: StageAggregate,
		desc: "terminal homomorphic aggregation: order only the Paillier sum per channel",
		params: []paramSpec{
			{"mode", `aggregation scheme, only "paillier"`},
			{"size", "contributions per released aggregate (default 8)"},
		},
		terminal:    true,
		terminalWhy: "any later stage would be skipped for aggregated requests",
		conflicts: []conflictRule{
			{StageBatch, "one terminal collector owns the held-request release path"},
			{StageEncrypt, "aggregation combines paillier ciphertexts, which envelope sealing would hide"},
		},
		build: func(p *params, sc StageConfig, env Env) (Stage, error) {
			if mode := p.str("mode", "paillier"); mode != "paillier" {
				return nil, fmt.Errorf("unknown aggregate mode %q (want paillier)", mode)
			}
			size := p.intVal("size", 8)
			if p.err != nil {
				return nil, p.err
			}
			return NewAggregate(env.Aggregator, size)
		},
	})
}
