package middleware

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/telemetry"
	"dltprivacy/internal/transport"
)

// Transport topics gateway endpoints serve.
const (
	// TopicSubmit carries signed client submissions.
	TopicSubmit = "gateway.submit"
	// TopicSessionOpen carries a signed SessionHello; the reply is a
	// marshalled SessionGrant.
	TopicSessionOpen = "session.open"
	// TopicSessionClose carries a session token to end.
	TopicSessionClose = "session.close"
	// TopicRevocationNotify is the admin topic signalling that the
	// revocation plane moved: the gateway pulls the delta from its
	// configured Revoker and applies it (session eviction, envelope member
	// exclusion). The payload is ignored; the notification carries no
	// authority of its own — all trust decisions come from the Revoker —
	// so it needs no authentication. The reply is a marshalled
	// RevocationNotice.
	TopicRevocationNotify = "revocation.notify"
	// TopicShardRebalance is the admin topic driving online channel
	// migration on a sharded ordering backend. The payload is an optional
	// marshalled RebalanceRequest: with Channel set, that channel migrates
	// to the requested shard; without one, the gateway runs a skew-driven
	// rebalancing pass over the per-shard load counters. The reply is a
	// marshalled RebalanceNotice listing the moves.
	TopicShardRebalance = "shard.rebalance"
)

// DefaultRebalanceSkew is the load-skew factor a shard.rebalance request
// without an explicit skew uses: shards loaded beyond this multiple of the
// mean shed channels.
const DefaultRebalanceSkew = 2.0

// RebalanceRequest asks a gateway to migrate ordering channels. Either a
// manual move (Channel + To) or an automatic pass (Skew, 0 meaning
// DefaultRebalanceSkew).
type RebalanceRequest struct {
	// Channel, when set, migrates that one channel to shard To.
	Channel string `json:"channel,omitempty"`
	// To is the target shard index for a manual move.
	To int `json:"to,omitempty"`
	// Skew is the load-skew factor for an automatic pass (> 1).
	Skew float64 `json:"skew,omitempty"`
}

// RebalanceNotice is the reply to a shard.rebalance request: the
// migrations performed (empty when the topology was already balanced).
type RebalanceNotice struct {
	Migrations []ordering.Migration `json:"migrations"`
}

// RevocationNotice is the reply to a revocation.notify request: what the
// triggered sync did.
type RevocationNotice struct {
	// Epoch is the revocation epoch the gateway is now synced to.
	Epoch uint64 `json:"epoch"`
	// SessionsRevoked is how many sessions this sync evicted.
	SessionsRevoked int `json:"sessionsRevoked"`
}

// Gateway fronts the platform backends: every submission runs through the
// configured chain, the terminal handler turns it into a ledger
// transaction and submits it to the ordering backend, and cut blocks are
// relayed to the platform adapters bound per channel. Safe for concurrent
// use.
type Gateway struct {
	name  string
	chain *Chain
	// codec is the wire codec the gateway offers (CodecJSON or
	// CodecBinary); JSON submissions are always accepted, binary frames
	// only when the gateway runs CodecBinary.
	codec   string
	orderer ordering.Backend
	// sharded is the orderer downcast to its sharded form, nil for
	// unsharded deployments; Stats snapshots per-shard counters from it.
	sharded *ordering.ShardedBackend
	now     func() time.Time
	// revoker is the revocation plane SyncRevocations pulls deltas from;
	// nil when the deployment runs without one. auditLog receives the
	// revocation audit trail (may be nil).
	revoker  Revoker
	auditLog *audit.Log

	// tracer samples submissions into a bounded trace ring (Config.Trace);
	// nil when tracing is off — every tracer method is nil-receiver safe,
	// so the untraced gateway pays one nil check per submission.
	tracer *telemetry.Tracer

	submitted atomic.Uint64 // requests accepted by the chain
	ordered   atomic.Uint64 // transactions handed to the orderer
	rejected  atomic.Uint64 // requests refused by any stage

	revMu    sync.Mutex // serializes SyncRevocations' delta cursor
	revEpoch uint64     // last revocation epoch applied to the encrypt stage
	sweeps   atomic.Uint64
	// unsubscribe detaches the RevocationSource push subscription; set at
	// construction, consumed by Close. Guarded by revMu.
	unsubscribe func()

	mu       sync.Mutex
	backends map[string][]Backend       // channel -> bound adapters
	bound    map[string]map[string]bool // channel -> backend name -> subscribed
	commits  map[string]*backendCounters
}

type backendCounters struct {
	blocks atomic.Uint64
	txs    atomic.Uint64
	errors atomic.Uint64
}

// BackendStats is a snapshot of one bound backend's commit counters.
type BackendStats struct {
	Name   string
	Blocks uint64
	Txs    uint64
	Errors uint64
}

// GatewayStats is a snapshot of the gateway's counters.
type GatewayStats struct {
	// Submitted counts requests the chain accepted (batched requests are
	// accepted when buffered).
	Submitted uint64
	// Ordered counts transactions handed to the ordering backend.
	Ordered uint64
	// Rejected counts requests refused by any stage.
	Rejected uint64
	// Stages holds per-stage counters in chain order.
	Stages []StageStats
	// Backends holds per-backend commit counters.
	Backends []BackendStats
	// Shards holds per-shard routing counters when the ordering backend is
	// sharded; nil otherwise.
	Shards []ordering.ShardStats
	// Sessions snapshots the session manager's lifecycle counters; nil when
	// the pipeline has no session stage.
	Sessions *SessionStats
	// KeyEpochsRotated counts the encrypt stage's data-key epoch installs;
	// 0 when the pipeline has no encrypt stage or no key cache.
	KeyEpochsRotated uint64
	// SessionsRevoked counts sessions evicted because their certificate
	// was revoked (a view of Sessions.Revoked, surfaced beside the other
	// revocation counters).
	SessionsRevoked uint64
	// KeyEpochsRevokedRotations counts cached channel data keys the
	// encrypt stage invalidated because a wrapped member was revoked; each
	// forces a fresh epoch the revoked member cannot unwrap.
	KeyEpochsRevokedRotations uint64
	// RevocationSweeps counts revocation syncs the gateway ran (push
	// notifications from a RevocationSource plus revocation.notify admin
	// requests plus direct SyncRevocations calls).
	RevocationSweeps uint64
	// TracesSampled counts requests recorded into the trace ring over the
	// gateway's lifetime; 0 when tracing is off.
	TracesSampled uint64
	// BatchGroupsSealed counts group envelopes the batch stage released in
	// group-seal mode; BatchGroupTxs the member transactions inside them;
	// BatchPending the submissions currently buffered. All 0 without a
	// batch stage (and the first two outside group-seal mode).
	BatchGroupsSealed uint64
	BatchGroupTxs     uint64
	BatchPending      int
	// AuditShed counts leakage observations dropped because the audit
	// stage's async ring was full; AuditRingPending the observations
	// enqueued but not yet recorded. Both 0 without an async audit ring.
	AuditShed        uint64
	AuditRingPending uint64
}

// NewGateway builds the configured chain and fronts it with the ordering
// backend. Misconfiguration fails here, before any traffic. A sharded
// backend is accepted transparently — it implements ordering.Backend — but
// when cfg.Shards declares a topology the backend must actually be an
// ordering.ShardedBackend with that many shards, and cfg.ShardPins is
// installed on it before any channel carries traffic.
func NewGateway(name string, cfg Config, env Env, orderer ordering.Backend) (*Gateway, error) {
	if name == "" {
		name = "gateway"
	}
	if orderer == nil {
		return nil, fmt.Errorf("%w: gateway needs an ordering backend", ErrBadConfig)
	}
	// With no injected clock the gateway runs coarseNow, but env.Now stays
	// nil into cfg.Build: each stage constructor adopts the default clock
	// itself and — crucially — KNOWS it did (defaultClock), which is what
	// lets the session stage's per-request reading ride req.nowStamp into
	// the encrypt stage instead of every stage reading the clock again.
	// Materializing coarseNow here would make the stages see an injected
	// clock and disable that sharing.
	gwNow := env.Now
	if gwNow == nil {
		gwNow = coarseNow
	}
	sharded, _ := orderer.(*ordering.ShardedBackend)
	if cfg.Shards > 0 {
		if sharded == nil {
			return nil, fmt.Errorf("%w: config declares %d ordering shards but the backend is not sharded", ErrBadConfig, cfg.Shards)
		}
		if got := sharded.Shards(); got != cfg.Shards {
			return nil, fmt.Errorf("%w: config declares %d ordering shards, backend has %d", ErrBadConfig, cfg.Shards, got)
		}
		for channel, shard := range cfg.ShardPins {
			if err := sharded.Pin(channel, shard); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
			}
		}
	}
	codec := cfg.Codec
	if codec == "" {
		codec = CodecJSON
	}
	g := &Gateway{
		name:     name,
		codec:    codec,
		orderer:  orderer,
		sharded:  sharded,
		now:      gwNow,
		revoker:  env.Revoker,
		auditLog: env.Log,
		backends: make(map[string][]Backend),
		bound:    make(map[string]map[string]bool),
		commits:  make(map[string]*backendCounters),
	}
	chain, err := cfg.Build(env, g.order)
	if err != nil {
		return nil, err
	}
	g.chain = chain
	if every, err := cfg.traceEvery(); err != nil {
		return nil, err
	} else if every > 0 {
		g.tracer = telemetry.NewTracer(every, 0)
	}
	// A push-capable revocation plane drives the gateway directly: every
	// Revoke lands as a sync, so sessions die and key epochs rotate without
	// waiting for a sweep interval or an admin notification. Close detaches
	// the subscription; gateways shorter-lived than their revocation source
	// must be closed or the source keeps pushing into them forever.
	if src, ok := g.revoker.(RevocationSource); ok {
		g.unsubscribe = src.OnRevoke(func(pki.Revocation) { g.SyncRevocations() })
	}
	return g, nil
}

// Close releases the gateway's push subscription on its revocation source,
// if any, and drains the audit stage's async ring: every leakage
// observation enqueued before Close returns is recorded. Idempotent; the
// gateway still serves traffic afterwards — it just stops receiving
// revocation pushes, and later audit observations record inline.
func (g *Gateway) Close() {
	g.revMu.Lock()
	unsub := g.unsubscribe
	g.unsubscribe = nil
	g.revMu.Unlock()
	if unsub != nil {
		unsub()
	}
	if a, ok := g.chain.stage(StageAudit).(*Audit); ok && a != nil {
		a.Close()
	}
}

// SyncRevocations pulls the revocation delta from the configured Revoker
// and applies it across the gateway: newly revoked identity certificates
// are excluded from envelope encryption (invalidating any cached channel
// key they could unwrap), the session manager sweeps sessions rooted in
// revoked certificates, and the revocation trail lands in the audit log.
// It returns how many sessions were evicted. Trivial without a Revoker.
// Safe for concurrent use; it is invoked by RevocationSource pushes, the
// revocation.notify admin topic, and directly by embedders.
func (g *Gateway) SyncRevocations() int {
	if g.revoker == nil {
		return 0
	}
	// revMu is held across the whole application, not just the cursor
	// advance: a concurrent sync must not observe the new epoch while the
	// encrypt exclusions for it are still pending, or its empty-delta
	// reply would claim a revocation is applied that is not. All the work
	// is in-memory, so the critical section stays cheap.
	g.revMu.Lock()
	defer g.revMu.Unlock()
	revs, version := g.revoker.RevokedSince(g.revEpoch)
	g.revEpoch = version
	enc, _ := g.chain.stage(StageEncrypt).(*Encrypt)
	for _, rev := range revs {
		// Only a revocation that withdraws the identity's standing excludes
		// it from envelopes: one-time certs never carried channel
		// membership, and a superseded-cert revocation (the key-rotation
		// flow: re-enroll, then revoke the old serial) withdraws one
		// certificate while the identity remains a member in good standing.
		if enc != nil && rev.Kind == pki.KindIdentity && rev.Identity != "" && !rev.Superseded {
			enc.RevokeMember(rev.Identity)
		}
		// The audit trail records that the gateway operator learned of the
		// revocation: who lost trust and at which epoch.
		g.auditLog.Record(g.name, audit.ClassIdentity,
			fmt.Sprintf("revoked:%s#%d@%d", rev.Identity, rev.Serial, rev.Epoch))
	}
	evicted := 0
	if mgr := g.Sessions(); mgr != nil {
		evicted = mgr.SweepRevoked()
	}
	g.sweeps.Add(1)
	return evicted
}

// ReadmitMember lifts the envelope exclusion of a previously revoked
// identity — the operator path for an identity revoked outright and later
// re-enrolled under a fresh certificate (its channels re-key to include it
// on their next submission). A no-op without an encrypt stage or for
// identities never excluded.
func (g *Gateway) ReadmitMember(identity string) {
	if e, ok := g.chain.stage(StageEncrypt).(*Encrypt); ok && e != nil {
		e.ReadmitMember(identity)
	}
}

// RevocationEpoch reports the last revocation epoch SyncRevocations
// applied.
func (g *Gateway) RevocationEpoch() uint64 {
	g.revMu.Lock()
	defer g.revMu.Unlock()
	return g.revEpoch
}

// Name returns the gateway's principal name.
func (g *Gateway) Name() string { return g.name }

// order is the terminal handler: build the ledger transaction and submit
// it for ordering.
func (g *Gateway) order(ctx context.Context, req *Request) error {
	meta := req.Meta
	if req.metaOwned && meta != nil {
		// The batch stage built this map for its release vehicle and no
		// caller holds it: annotate in place instead of copying.
		meta["gateway"] = g.name
	} else {
		meta = make(map[string]string, len(req.Meta)+1)
		for k, v := range req.Meta {
			meta[k] = v
		}
		meta["gateway"] = g.name
	}
	tx := ledger.Transaction{
		Channel:   req.Channel,
		Creator:   req.Principal,
		Payload:   req.Payload,
		Meta:      meta,
		Timestamp: g.now(),
	}
	if err := g.orderer.Submit(tx); err != nil {
		return fmt.Errorf("gateway %s: order: %w", g.name, err)
	}
	req.Tx = tx
	g.ordered.Add(1)
	return nil
}

// Submit runs one request through the chain. A nil return means the
// request was accepted: either ordered, or buffered by the batch stage for
// a later group release. When tracing is configured the request may be
// sampled (always, if it arrived with a wire-carried TraceID) and its
// per-stage spans recorded into the trace ring; the unsampled path costs
// one atomic increment, tracing off one nil check.
func (g *Gateway) Submit(ctx context.Context, req *Request) error {
	tr := g.tracer.For(req.TraceID)
	if tr != nil {
		req.trace = tr
		req.TraceID = tr.ID
	}
	err := g.chain.Execute(ctx, req)
	g.tracer.Finish(tr, err)
	if err != nil {
		g.rejected.Add(1)
		return err
	}
	g.submitted.Add(1)
	return nil
}

// SubmitFuture is the completion handle SubmitAsync returns: it resolves
// with the request's delivery outcome — immediately for requests ordered
// or rejected inline, at group release for requests the batch stage
// buffered. Wait may be called repeatedly; the first resolution sticks.
type SubmitFuture struct {
	ch chan error

	mu       sync.Mutex
	resolved bool
	err      error
}

// Wait blocks until the submission's delivery outcome is known or ctx is
// done. A nil return means the request was ordered (or delivered through
// its group); a batched member whose group release failed gets the
// ErrBatchRelease-wrapped group error.
func (f *SubmitFuture) Wait(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.resolved {
		return f.err
	}
	select {
	case err := <-f.ch:
		f.resolved, f.err = true, err
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SubmitAsync runs one request through the chain and returns a completion
// future instead of coupling the caller to the group release: a request
// the batch stage buffers is acknowledged immediately (nil error, like
// Submit) and its future resolves when its group is released — letting
// submitters pipeline a whole batch and then collect outcomes, instead of
// blocking a round-trip per transaction. Requests rejected or ordered
// inline resolve their future before SubmitAsync returns. The returned
// error mirrors Submit (nil means accepted).
func (g *Gateway) SubmitAsync(ctx context.Context, req *Request) (*SubmitFuture, error) {
	req.done = make(chan error, 1)
	f := &SubmitFuture{ch: req.done}
	err := g.Submit(ctx, req)
	if !req.buffered {
		// Never reached a holding stage: the outcome is already final.
		// Buffered requests resolve at release (the batch stage owns their
		// completion — including the filling request, whose release ran
		// inside this Submit call).
		req.complete(err)
	}
	return f, err
}

// Tracer returns the gateway's request tracer, nil when Config.Trace is
// off. The handle /tracez serves from.
func (g *Gateway) Tracer() *telemetry.Tracer { return g.tracer }

// Flush releases any partially-filled batch or aggregation group
// downstream, then waits for the audit stage's async ring (if any) to
// catch up, so after Flush returns every accepted submission is ordered
// AND its leakage observation recorded. Gateways without a holding stage
// flush trivially.
func (g *Gateway) Flush(ctx context.Context) error {
	var err error
	if b, ok := g.chain.stage(StageBatch).(*Batch); ok && b != nil {
		err = b.Flush(ctx)
	} else if a, ok := g.chain.stage(StageAggregate).(*Aggregate); ok && a != nil {
		err = a.Flush(ctx)
	}
	if a, ok := g.chain.stage(StageAudit).(*Audit); ok && a != nil {
		a.Flush()
	}
	return err
}

// Backend is a platform adapter the gateway relays ordered blocks into:
// the bridge from the confidentiality pipeline to Fabric, Corda, or Quorum
// native submission paths.
type Backend interface {
	Name() string
	// Commit applies one ordered block to the platform.
	Commit(b ledger.Block) error
}

// Bind subscribes the backends to the channel's block stream. Each cut
// block is committed to every bound backend; the first failing backend
// aborts delivery and surfaces the error to the submitting request (which
// is what the breaker and retry stages act on). Re-binding is idempotent
// BY NAME: a backend whose Name() is already bound to the channel is
// skipped — including a different instance under the same name — so
// reconnect paths cannot register a second orderer subscription and
// double-commit every block. Adapters that reconnect should keep the
// connection inside one long-lived instance rather than re-Bind a new one.
func (g *Gateway) Bind(channel string, backends ...Backend) {
	g.mu.Lock()
	defer g.mu.Unlock()
	names := g.bound[channel]
	if names == nil {
		names = make(map[string]bool)
		g.bound[channel] = names
	}
	for _, b := range backends {
		if names[b.Name()] {
			continue
		}
		names[b.Name()] = true
		g.backends[channel] = append(g.backends[channel], b)
		ctr, ok := g.commits[b.Name()]
		if !ok {
			ctr = &backendCounters{}
			g.commits[b.Name()] = ctr
		}
		b := b
		g.orderer.Subscribe(channel, func(blk ledger.Block) error {
			if err := b.Commit(blk); err != nil {
				ctr.errors.Add(1)
				return fmt.Errorf("backend %s: %w", b.Name(), err)
			}
			ctr.blocks.Add(1)
			ctr.txs.Add(uint64(len(blk.Txs)))
			return nil
		})
	}
}

// Bound returns the adapters bound to a channel.
func (g *Gateway) Bound(channel string) []Backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Backend(nil), g.backends[channel]...)
}

// Sharded exposes the sharded ordering backend this gateway fronts, nil
// for unsharded deployments. Admin surfaces (the shard.rebalance topic,
// operational tooling, the chaos harness) use it to migrate channels and
// read per-shard counters.
func (g *Gateway) Sharded() *ordering.ShardedBackend { return g.sharded }

// Stats snapshots gateway, per-stage, and per-backend counters.
func (g *Gateway) Stats() GatewayStats {
	stats := GatewayStats{
		Submitted: g.submitted.Load(),
		Ordered:   g.ordered.Load(),
		Rejected:  g.rejected.Load(),
		Stages:    g.chain.Stats(),
	}
	if g.sharded != nil {
		stats.Shards = g.sharded.Stats()
	}
	if mgr := g.Sessions(); mgr != nil {
		ss := mgr.Stats()
		stats.Sessions = &ss
		stats.SessionsRevoked = ss.Revoked
	}
	if e, ok := g.chain.stage(StageEncrypt).(*Encrypt); ok && e != nil {
		stats.KeyEpochsRotated = e.Rotations()
		stats.KeyEpochsRevokedRotations = e.RevokedRotations()
	}
	stats.RevocationSweeps = g.sweeps.Load()
	stats.TracesSampled = g.tracer.Sampled()
	if b, ok := g.chain.stage(StageBatch).(*Batch); ok && b != nil {
		stats.BatchGroupsSealed = b.GroupsSealed()
		stats.BatchGroupTxs = b.GroupTxs()
		stats.BatchPending = b.Pending()
	}
	if a, ok := g.chain.stage(StageAudit).(*Audit); ok && a != nil {
		stats.AuditShed = a.Shed()
		stats.AuditRingPending = a.RingPending()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for name, ctr := range g.commits {
		stats.Backends = append(stats.Backends, BackendStats{
			Name:   name,
			Blocks: ctr.blocks.Load(),
			Txs:    ctr.txs.Load(),
			Errors: ctr.errors.Load(),
		})
	}
	return stats
}

// RegisterMetrics registers every subsystem the gateway fronts into reg
// under the confmw_* naming scheme: per-stage chain telemetry, gateway
// submission counters, session lifecycle, encrypt key epochs, revocation
// plane, per-shard routing, backend commit aggregates, and trace sampling.
// Call once per gateway per registry, before serving /metrics.
func (g *Gateway) RegisterMetrics(reg *telemetry.Registry) error {
	if err := g.chain.RegisterMetrics(reg); err != nil {
		return err
	}
	for _, c := range []struct {
		name, help string
		fn         func() uint64
	}{
		{"confmw_gateway_submitted_total", "Requests accepted by the chain.", g.submitted.Load},
		{"confmw_gateway_ordered_total", "Transactions handed to the ordering backend.", g.ordered.Load},
		{"confmw_gateway_rejected_total", "Requests refused by a stage.", g.rejected.Load},
		{"confmw_revocation_sweeps_total", "Revocation syncs the gateway applied.", g.sweeps.Load},
		{"confmw_traces_sampled_total", "Requests recorded into the trace ring.", g.tracer.Sampled},
	} {
		if err := reg.CounterFunc(c.name, c.help, c.fn); err != nil {
			return err
		}
	}
	if err := reg.GaugeFunc("confmw_revocation_epoch",
		"Last revocation epoch applied.", func() float64 { return float64(g.RevocationEpoch()) }); err != nil {
		return err
	}
	if mgr := g.Sessions(); mgr != nil {
		if err := mgr.RegisterMetrics(reg); err != nil {
			return err
		}
	}
	if e, ok := g.chain.stage(StageEncrypt).(*Encrypt); ok && e != nil {
		if err := reg.CounterFunc("confmw_key_epochs_rotated_total",
			"Channel data-key epoch installs by the encrypt stage.", e.Rotations); err != nil {
			return err
		}
		if err := reg.CounterFunc("confmw_key_epochs_revoked_rotations_total",
			"Cached channel keys invalidated because a wrapped member was revoked.", e.RevokedRotations); err != nil {
			return err
		}
	}
	if g.sharded != nil {
		if err := g.sharded.RegisterMetrics(reg); err != nil {
			return err
		}
	}
	if b, ok := g.chain.stage(StageBatch).(*Batch); ok && b != nil {
		if err := reg.CounterFunc("confmw_batch_groups_sealed_total",
			"Group envelopes released by the batch stage (group-seal mode).", b.GroupsSealed); err != nil {
			return err
		}
		if err := reg.CounterFunc("confmw_batch_group_txs_total",
			"Member transactions released inside group envelopes.", b.GroupTxs); err != nil {
			return err
		}
		if err := reg.GaugeFunc("confmw_batch_pending",
			"Submissions currently buffered by the batch stage.",
			func() float64 { return float64(b.Pending()) }); err != nil {
			return err
		}
	}
	if a, ok := g.chain.stage(StageAudit).(*Audit); ok && a != nil && a.Async() {
		for _, c := range []struct {
			name, help string
			fn         func() uint64
		}{
			{"confmw_audit_enqueued_total", "Leakage observations accepted into the audit ring.", a.Enqueued},
			{"confmw_audit_drained_total", "Leakage observations the audit drainer recorded.", a.Drained},
			{"confmw_audit_shed_total", "Leakage observations dropped because the audit ring was full.", a.Shed},
		} {
			if err := reg.CounterFunc(c.name, c.help, c.fn); err != nil {
				return err
			}
		}
		if err := reg.GaugeFunc("confmw_audit_ring_pending",
			"Leakage observations enqueued but not yet recorded.",
			func() float64 { return float64(a.RingPending()) }); err != nil {
			return err
		}
	}
	// Backend commit counters aggregate over bound adapters: Bind is
	// dynamic, so the scrape sums the commit table instead of registering
	// per-backend series up front.
	sum := func(pick func(*backendCounters) uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			g.mu.Lock()
			for _, ctr := range g.commits {
				n += pick(ctr)
			}
			g.mu.Unlock()
			return n
		}
	}
	for _, c := range []struct {
		name, help string
		fn         func() uint64
	}{
		{"confmw_backend_committed_blocks_total", "Blocks committed across bound platform backends.",
			sum(func(c *backendCounters) uint64 { return c.blocks.Load() })},
		{"confmw_backend_committed_txs_total", "Transactions committed across bound platform backends.",
			sum(func(c *backendCounters) uint64 { return c.txs.Load() })},
		{"confmw_backend_commit_errors_total", "Failed block commits across bound platform backends.",
			sum(func(c *backendCounters) uint64 { return c.errors.Load() })},
	} {
		if err := reg.CounterFunc(c.name, c.help, c.fn); err != nil {
			return err
		}
	}
	return nil
}

// Sessions returns the session manager of the chain's session stage, or
// nil when the pipeline has no session stage.
func (g *Gateway) Sessions() *SessionManager {
	if s, ok := g.chain.stage(StageSession).(*Session); ok && s != nil {
		return s.Manager()
	}
	return nil
}

// RotateChannelKey forces the encrypt stage onto a fresh data-key epoch
// for the channel (e.g. after revoking a member's certificate). A no-op
// when the pipeline has no encrypt stage or no key cache.
func (g *Gateway) RotateChannelKey(channel string) {
	if e, ok := g.chain.stage(StageEncrypt).(*Encrypt); ok && e != nil {
		e.Rotate(channel)
	}
}

// wireRequest is the form a transport client submits — JSON by default,
// or the binary v2 framing on a binary-codec gateway. Session-bound
// submissions carry the token instead of a certificate; the cert is a
// pointer so it is genuinely absent from their wire bytes. MAC carries the
// per-session HMAC under reqauth=mac.
type wireRequest struct {
	Channel   string            `json:"channel"`
	Principal string            `json:"principal"`
	Backend   string            `json:"backend,omitempty"`
	Payload   []byte            `json:"payload"`
	Cert      *pki.Certificate  `json:"cert,omitempty"`
	Sig       dcrypto.Signature `json:"sig"`
	MAC       []byte            `json:"mac,omitempty"`
	Session   string            `json:"session,omitempty"`
	Meta      map[string]string `json:"meta,omitempty"`
	// TraceID propagates a sampled trace across the wire hop; zero (the
	// common case) is omitted from both framings. Not covered by the
	// request signature, like the session token: it annotates delivery.
	TraceID uint64 `json:"trace,omitempty"`
}

// ServeWire handles one wire message against the gateway: the shared
// topic dispatch behind every transport front (the in-process substrate
// via AttachTransport, the TCP edge via netedge.Server). transportID names
// the connection the message arrived on — transports with per-connection
// identity pass it so sessions opened here are bound to the connection and
// submissions resolve against that binding; transports without one pass ""
// and sessions stay unbound. The payload slice is only borrowed: binary
// submissions alias it zero-copy during the chain run, but nothing retains
// it past return (the encrypt stage replaces the payload before any
// holding stage buffers the request), so stream transports may reuse their
// read buffer for the next frame.
func (g *Gateway) ServeWire(ctx context.Context, topic string, payload []byte, transportID string) ([]byte, error) {
	switch topic {
	case TopicSubmit:
		var w wireRequest
		if isBinaryFrame(payload) {
			if g.codec != CodecBinary {
				return nil, fmt.Errorf("gateway %s: binary codec not enabled", g.name)
			}
			var err error
			if w, err = decodeWireRequestBinary(payload); err != nil {
				return nil, fmt.Errorf("gateway %s: decode request: %w", g.name, err)
			}
		} else if err := json.Unmarshal(payload, &w); err != nil {
			return nil, fmt.Errorf("gateway %s: decode request: %w", g.name, err)
		}
		req := &Request{
			Channel:      w.Channel,
			Principal:    w.Principal,
			Backend:      w.Backend,
			Payload:      w.Payload,
			Sig:          w.Sig,
			MAC:          w.MAC,
			SessionToken: w.Session,
			Meta:         w.Meta,
			TraceID:      w.TraceID,
			TransportID:  transportID,
		}
		if w.Cert != nil {
			req.Cert = *w.Cert
		}
		// The ID covers the payload as submitted; the encrypt stage
		// replaces it, so capture before running the chain.
		id := req.ID()
		if err := g.Submit(ctx, req); err != nil {
			return nil, err
		}
		return []byte(id), nil
	case TopicSessionOpen:
		mgr := g.Sessions()
		if mgr == nil {
			return nil, fmt.Errorf("gateway %s: pipeline has no session stage", g.name)
		}
		var hello SessionHello
		if err := json.Unmarshal(payload, &hello); err != nil {
			return nil, fmt.Errorf("gateway %s: decode hello: %w", g.name, err)
		}
		// A hello carrying a trace ID joins the client's sampled flow:
		// the handshake is recorded as its own trace in the ring.
		var tr *telemetry.Trace
		if hello.TraceID != 0 {
			tr = g.tracer.For(hello.TraceID)
		}
		grant, err := mgr.OpenBound(hello, transportID)
		if tr != nil {
			d := time.Since(tr.Start)
			tr.AddSpan("session.open", tr.Start, d, d, err)
			g.tracer.Finish(tr, err)
		}
		if err != nil {
			return nil, err
		}
		// Codec negotiation: the session gets binary framing only when
		// the client asked for it AND the gateway offers it; everything
		// else downgrades to JSON, which every gateway accepts.
		grant.Codec = CodecJSON
		if hello.Codec == CodecBinary && g.codec == CodecBinary {
			grant.Codec = CodecBinary
		}
		b, err := json.Marshal(grant)
		if err != nil {
			return nil, fmt.Errorf("gateway %s: encode grant: %w", g.name, err)
		}
		return b, nil
	case TopicSessionClose:
		mgr := g.Sessions()
		if mgr == nil {
			return nil, fmt.Errorf("gateway %s: pipeline has no session stage", g.name)
		}
		mgr.Close(string(payload))
		return []byte("ok"), nil
	case TopicRevocationNotify:
		if g.revoker == nil {
			return nil, fmt.Errorf("gateway %s: no revocation plane configured", g.name)
		}
		evicted := g.SyncRevocations()
		b, err := json.Marshal(RevocationNotice{Epoch: g.RevocationEpoch(), SessionsRevoked: evicted})
		if err != nil {
			return nil, fmt.Errorf("gateway %s: encode revocation notice: %w", g.name, err)
		}
		return b, nil
	case TopicShardRebalance:
		if g.sharded == nil {
			return nil, fmt.Errorf("gateway %s: ordering backend is not sharded", g.name)
		}
		var req RebalanceRequest
		if len(payload) > 0 {
			if err := json.Unmarshal(payload, &req); err != nil {
				return nil, fmt.Errorf("gateway %s: decode rebalance request: %w", g.name, err)
			}
		}
		var moves []ordering.Migration
		if req.Channel != "" {
			from := g.sharded.ShardFor(req.Channel)
			if err := g.sharded.Migrate(req.Channel, req.To); err != nil {
				return nil, fmt.Errorf("gateway %s: %w", g.name, err)
			}
			if from != req.To {
				moves = []ordering.Migration{{Channel: req.Channel, From: from, To: req.To}}
			}
		} else {
			skew := req.Skew
			if skew == 0 {
				skew = DefaultRebalanceSkew
			}
			var err error
			moves, err = g.sharded.Rebalance(skew)
			if err != nil {
				return nil, fmt.Errorf("gateway %s: %w", g.name, err)
			}
		}
		b, err := json.Marshal(RebalanceNotice{Migrations: moves})
		if err != nil {
			return nil, fmt.Errorf("gateway %s: encode rebalance notice: %w", g.name, err)
		}
		return b, nil
	default:
		return nil, fmt.Errorf("gateway %s: unknown topic %q", g.name, topic)
	}
}

// AttachTransport registers the gateway as a network endpoint serving
// TopicSubmit, TopicSessionOpen, and TopicSessionClose. The reply to an
// accepted submission is its request ID (batched submissions are
// acknowledged before a transaction exists); to an accepted handshake, a
// marshalled SessionGrant. Requests run under the caller's ctx, so
// server-side deadlines and cancellation reach the chain. The in-process
// substrate has no per-connection identity, so sessions opened through it
// stay unbound (see ServeWire and the TCP edge for bound sessions).
func (g *Gateway) AttachTransport(ctx context.Context, net *transport.Network, endpoint string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return net.Register(endpoint, func(msg transport.Message) ([]byte, error) {
		return g.ServeWire(ctx, msg.Topic, msg.Payload, "")
	})
}

// SubmitOver sends a signed request to a gateway endpoint over the network
// substrate (JSON framing) and returns the gateway's submission ID.
func SubmitOver(net *transport.Network, from, endpoint string, req *Request) (string, error) {
	return SubmitOverCodec(net, from, endpoint, req, CodecJSON)
}

// SubmitOverCodec is SubmitOver with an explicit wire codec — pass the
// codec the session grant negotiated. Binary framing needs a binary-codec
// gateway; JSON is accepted everywhere.
func SubmitOverCodec(net *transport.Network, from, endpoint string, req *Request, codec string) (string, error) {
	b, err := EncodeWireRequest(req, codec)
	if err != nil {
		return "", fmt.Errorf("middleware: encode request: %w", err)
	}
	reply, err := net.Send(transport.Message{From: from, To: endpoint, Topic: TopicSubmit, Payload: b})
	if err != nil {
		return "", err
	}
	return string(reply), nil
}

// OpenSessionOver performs the signed session handshake with a gateway
// endpoint over the network substrate: full authn is paid once here, and
// the returned grant's token rides on every subsequent submission.
func OpenSessionOver(net *transport.Network, from, endpoint string, cert pki.Certificate, key *dcrypto.PrivateKey) (SessionGrant, error) {
	return OpenSessionOverCodec(net, from, endpoint, cert, key, "")
}

// OpenSessionOverCodec is OpenSessionOver asking for a wire codec; the
// grant reports the codec the gateway actually offers (and, on a
// reqauth=mac gateway, the session MAC key for MACRequest).
func OpenSessionOverCodec(net *transport.Network, from, endpoint string, cert pki.Certificate, key *dcrypto.PrivateKey, codec string) (SessionGrant, error) {
	hello, err := NewSessionHello(from, cert, key)
	if err != nil {
		return SessionGrant{}, err
	}
	hello.Codec = codec
	b, err := json.Marshal(hello)
	if err != nil {
		return SessionGrant{}, fmt.Errorf("middleware: encode hello: %w", err)
	}
	reply, err := net.Send(transport.Message{From: from, To: endpoint, Topic: TopicSessionOpen, Payload: b})
	if err != nil {
		return SessionGrant{}, err
	}
	var grant SessionGrant
	if err := json.Unmarshal(reply, &grant); err != nil {
		return SessionGrant{}, fmt.Errorf("middleware: decode grant: %w", err)
	}
	return grant, nil
}

// CloseSessionOver ends a session at a gateway endpoint.
func CloseSessionOver(net *transport.Network, from, endpoint, token string) error {
	_, err := net.Send(transport.Message{From: from, To: endpoint, Topic: TopicSessionClose, Payload: []byte(token)})
	return err
}

// NotifyRevocationOver tells a gateway endpoint that the revocation plane
// moved; the gateway pulls and applies the delta and reports what it did.
// The path for deployments whose CA runs out of process, where the
// in-process push subscription cannot reach.
func NotifyRevocationOver(net *transport.Network, from, endpoint string) (RevocationNotice, error) {
	reply, err := net.Send(transport.Message{From: from, To: endpoint, Topic: TopicRevocationNotify})
	if err != nil {
		return RevocationNotice{}, err
	}
	var notice RevocationNotice
	if err := json.Unmarshal(reply, &notice); err != nil {
		return RevocationNotice{}, fmt.Errorf("middleware: decode revocation notice: %w", err)
	}
	return notice, nil
}

// RebalanceOver drives shard.rebalance at a gateway endpoint over the
// network substrate: a manual channel migration when req.Channel is set,
// or a skew-driven pass otherwise. Returns the moves the gateway made.
func RebalanceOver(net *transport.Network, from, endpoint string, req RebalanceRequest) (RebalanceNotice, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return RebalanceNotice{}, fmt.Errorf("middleware: encode rebalance request: %w", err)
	}
	reply, err := net.Send(transport.Message{From: from, To: endpoint, Topic: TopicShardRebalance, Payload: b})
	if err != nil {
		return RebalanceNotice{}, err
	}
	var notice RebalanceNotice
	if err := json.Unmarshal(reply, &notice); err != nil {
		return RebalanceNotice{}, fmt.Errorf("middleware: decode rebalance notice: %w", err)
	}
	return notice, nil
}
