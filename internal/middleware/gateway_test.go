package middleware

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/contract"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/platform/corda"
	"dltprivacy/internal/platform/fabric"
	"dltprivacy/internal/platform/quorum"
	"dltprivacy/internal/transport"
	"dltprivacy/internal/workload"
)

// kvContract is the chaincode the Fabric adapter invokes: put(key, value).
func kvContract() contract.Contract {
	return contract.Contract{
		Name:    "kv",
		Version: "1",
		Funcs: map[string]contract.Func{
			"put": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				if len(args) != 2 {
					return nil, errors.New("put: want key, value")
				}
				ctx.Put(string(args[0]), args[1])
				return []byte("ok"), nil
			},
		},
	}
}

// testPlatforms stands up all three platform models for the members and
// returns their gateway adapters.
func testPlatforms(t testing.TB, members []string) (*fabric.Network, *corda.Network, *quorum.Network, []Backend) {
	t.Helper()
	fnet, err := fabric.NewNetwork(fabric.Config{})
	if err != nil {
		t.Fatalf("fabric.NewNetwork: %v", err)
	}
	for _, m := range members {
		if _, err := fnet.AddOrg(m); err != nil {
			t.Fatalf("AddOrg %s: %v", m, err)
		}
	}
	policy := contract.Policy{Members: members, Threshold: 2}
	if err := fnet.CreateChannel("deals", members, policy); err != nil {
		t.Fatalf("CreateChannel: %v", err)
	}
	if err := fnet.InstallChaincode("deals", kvContract(), members); err != nil {
		t.Fatalf("InstallChaincode: %v", err)
	}
	fb, err := NewFabricBackend(fnet, members[0], "kv", "put", members[:2])
	if err != nil {
		t.Fatal(err)
	}

	cnet, err := corda.NewNetwork(corda.Config{})
	if err != nil {
		t.Fatalf("corda.NewNetwork: %v", err)
	}
	for _, m := range members {
		if _, err := cnet.AddParty(m); err != nil {
			t.Fatalf("AddParty %s: %v", m, err)
		}
	}
	cb, err := NewCordaBackend(cnet, members[0], members[0], members)
	if err != nil {
		t.Fatal(err)
	}

	qnet := quorum.NewNetwork()
	for _, m := range members {
		if _, err := qnet.AddNode(m); err != nil {
			t.Fatalf("AddNode %s: %v", m, err)
		}
	}
	qb, err := NewQuorumBackend(qnet, members[0], members[1:])
	if err != nil {
		t.Fatal(err)
	}
	return fnet, cnet, qnet, []Backend{fb, cb, qb}
}

// fullChainConfig is the acceptance-criteria pipeline:
// authn -> encrypt -> audit -> ratelimit -> batch.
func fullChainConfig(observer string, batch int) Config {
	return Config{Stages: []StageConfig{
		{Name: StageAuthn},
		{Name: StageEncrypt},
		{Name: StageAudit, Params: map[string]string{"observer": observer}},
		{Name: StageRateLimit, Params: map[string]string{"rate": "1000", "burst": "1000"}},
		{Name: StageBatch, Params: map[string]string{"size": fmt.Sprint(batch)}},
	}}
}

func TestGatewayEndToEnd(t *testing.T) {
	wl := workload.New(42)
	members := wl.Orgs(3)
	trades, err := wl.Trades(members, 6, 48)
	if err != nil {
		t.Fatal(err)
	}

	ca, ps := enroll(t, members...)
	memberKeys := make(map[string]dcrypto.PublicKey, len(members))
	for _, m := range members {
		memberKeys[m] = ps[m].key.Public()
	}
	log := audit.NewLog()
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope, ordering.WithAuditLog(log))
	fnet, cnet, qnet, backends := testPlatforms(t, members)

	env := Env{CAKey: ca.PublicKey(), Directory: StaticDirectory{"deals": memberKeys}, Log: log}
	gw, err := NewGateway("gw", fullChainConfig("gateway-op", 3), env, orderer)
	if err != nil {
		t.Fatalf("NewGateway: %v", err)
	}
	gw.Bind("deals", backends...)

	// Submit every workload trade through the full chain.
	reqs := make([]*Request, 0, len(trades))
	for _, tr := range trades {
		payload, err := json.Marshal(tr)
		if err != nil {
			t.Fatal(err)
		}
		req := signedRequest(t, ps[tr.Buyer], "deals", payload)
		if err := gw.Submit(context.Background(), req); err != nil {
			t.Fatalf("Submit trade %s: %v", tr.ID, err)
		}
		reqs = append(reqs, req)
	}

	stats := gw.Stats()
	if stats.Submitted != 6 || stats.Ordered != 6 || stats.Rejected != 0 {
		t.Fatalf("gateway stats = %+v, want 6 submitted/6 ordered/0 rejected", stats)
	}
	for _, bs := range stats.Backends {
		if bs.Txs != 6 || bs.Errors != 0 {
			t.Fatalf("backend %s committed %d txs (%d errors), want 6/0", bs.Name, bs.Txs, bs.Errors)
		}
	}
	for _, st := range stats.Stages {
		if st.Calls != 6 {
			t.Fatalf("stage %s calls = %d, want 6", st.Name, st.Calls)
		}
		if st.Errors != 0 {
			t.Fatalf("stage %s errors = %d", st.Name, st.Errors)
		}
	}

	// Every request was ordered (batch released) and every backend holds
	// the committed envelope.
	reader := members[1]
	for i, req := range reqs {
		if req.Tx.Channel == "" {
			t.Fatalf("request %d never reached the terminal handler", i)
		}
		txID := req.Tx.ID()

		// Fabric: the envelope landed in channel state under the tx ID.
		committed, err := fnet.Query("deals", reader, txID)
		if err != nil {
			t.Fatalf("fabric Query tx %s: %v", txID, err)
		}
		envl, err := ParseEnvelope(committed)
		if err != nil {
			t.Fatalf("fabric payload is not an envelope: %v", err)
		}
		got, err := OpenEnvelope(envl, reader, ps[reader].key)
		if err != nil {
			t.Fatalf("member cannot open committed envelope: %v", err)
		}
		var tr workload.Trade
		if err := json.Unmarshal(got, &tr); err != nil {
			t.Fatalf("decrypted payload: %v", err)
		}
		if tr.ID != trades[i].ID || tr.Buyer != trades[i].Buyer {
			t.Fatalf("trade %d round-trip mismatch: got %s by %s", i, tr.ID, tr.Buyer)
		}

		// Quorum: participants hold the private payload; the public chain
		// records only its hash.
		node, err := qnet.Node(reader)
		if err != nil {
			t.Fatal(err)
		}
		private, ok := node.PrivateState(txID)
		if !ok {
			t.Fatalf("quorum participant missing private state for %s", txID)
		}
		if _, err := ParseEnvelope(private); err != nil {
			t.Fatalf("quorum private payload is not the envelope: %v", err)
		}
	}

	// Corda: one issued state per trade in the custodian's vault.
	custodian, err := cnet.Party(members[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := len(custodian.Vault()); got != 6 {
		t.Fatalf("corda vault holds %d states, want 6", got)
	}

	// Quorum's public chain carries no plaintext payloads.
	for _, tx := range qnet.Chain() {
		if !tx.IsPrivate || len(tx.Payload) != 0 {
			t.Fatalf("quorum public chain leaked a payload: %+v", tx)
		}
	}

	// Leakage accounting: neither the gateway operator nor the
	// envelope-visibility orderer saw transaction data.
	for _, op := range []string{"gateway-op", "orderer-op"} {
		if log.SawAny(op, audit.ClassTxData) {
			t.Fatalf("%s observed transaction data through an encrypting pipeline", op)
		}
		if !log.SawAny(op, audit.ClassTxMetadata) {
			t.Fatalf("%s recorded no envelope metadata", op)
		}
	}
}

func TestGatewayRejectsMisorderedConfig(t *testing.T) {
	ca, _ := enroll(t, "alice")
	orderer := ordering.New("op", ordering.VisibilityEnvelope)
	cfg := Config{Stages: []StageConfig{
		{Name: StageEncrypt}, // encrypt before authn: construction-time error
		{Name: StageAuthn},
	}}
	env := Env{CAKey: ca.PublicKey(), Directory: StaticDirectory{}}
	if _, err := NewGateway("gw", cfg, env, orderer); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("NewGateway = %v, want ErrBadConfig", err)
	}
}

func TestGatewaySubmitOverTransport(t *testing.T) {
	wl := workload.New(7)
	members := wl.Orgs(3)
	ca, ps := enroll(t, members...)
	memberKeys := make(map[string]dcrypto.PublicKey, len(members))
	for _, m := range members {
		memberKeys[m] = ps[m].key.Public()
	}
	log := audit.NewLog()
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope, ordering.WithAuditLog(log))
	_, _, _, backends := testPlatforms(t, members)

	env := Env{CAKey: ca.PublicKey(), Directory: StaticDirectory{"deals": memberKeys}, Log: log}
	gw, err := NewGateway("gw", fullChainConfig("gateway-op", 2), env, orderer)
	if err != nil {
		t.Fatal(err)
	}
	gw.Bind("deals", backends...)

	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		t.Fatalf("AttachTransport: %v", err)
	}

	req1 := signedRequest(t, ps[members[0]], "deals", []byte("first"))
	id1, err := SubmitOver(net, members[0], "gateway", req1)
	if err != nil {
		t.Fatalf("SubmitOver: %v", err)
	}
	if id1 != req1.ID() {
		t.Fatalf("submission id = %s, want %s", id1, req1.ID())
	}

	// A tampered remote submission is rejected through the same endpoint.
	bad := signedRequest(t, ps[members[1]], "deals", []byte("second"))
	bad.Payload = []byte("altered")
	if _, err := SubmitOver(net, members[1], "gateway", bad); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered remote submission = %v, want ErrBadSignature", err)
	}

	// Second valid submission fills the batch of two and commits both.
	req2 := signedRequest(t, ps[members[1]], "deals", []byte("second"))
	if _, err := SubmitOver(net, members[1], "gateway", req2); err != nil {
		t.Fatalf("SubmitOver: %v", err)
	}
	stats := gw.Stats()
	if stats.Ordered != 2 {
		t.Fatalf("ordered = %d, want 2", stats.Ordered)
	}
	for _, bs := range stats.Backends {
		if bs.Txs != 2 {
			t.Fatalf("backend %s committed %d txs, want 2", bs.Name, bs.Txs)
		}
	}
}

func TestGatewayConcurrentSubmit(t *testing.T) {
	wl := workload.New(11)
	members := wl.Orgs(4)
	ca, ps := enroll(t, members...)
	memberKeys := make(map[string]dcrypto.PublicKey, len(members))
	for _, m := range members {
		memberKeys[m] = ps[m].key.Public()
	}
	log := audit.NewLog()
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope, ordering.WithAuditLog(log))
	_, _, _, backends := testPlatforms(t, members)

	env := Env{CAKey: ca.PublicKey(), Directory: StaticDirectory{"deals": memberKeys}, Log: log}
	gw, err := NewGateway("gw", fullChainConfig("gateway-op", 4), env, orderer)
	if err != nil {
		t.Fatal(err)
	}
	gw.Bind("deals", backends...)

	const perMember = 8
	var wg sync.WaitGroup
	errs := make(chan error, len(members)*perMember)
	for _, m := range members {
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			for i := 0; i < perMember; i++ {
				req := &Request{
					Channel:   "deals",
					Principal: m,
					Payload:   []byte(fmt.Sprintf("%s-%d", m, i)),
					Cert:      ps[m].cert,
				}
				if err := SignRequest(req, ps[m].key); err != nil {
					errs <- err
					return
				}
				if err := gw.Submit(context.Background(), req); err != nil {
					errs <- err
					return
				}
			}
		}(m)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent submit: %v", err)
	}
	if err := gw.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	total := uint64(len(members) * perMember)
	stats := gw.Stats()
	if stats.Ordered != total {
		t.Fatalf("ordered = %d, want %d", stats.Ordered, total)
	}
	for _, bs := range stats.Backends {
		if bs.Txs != total || bs.Errors != 0 {
			t.Fatalf("backend %s committed %d txs (%d errors), want %d/0", bs.Name, bs.Txs, bs.Errors, total)
		}
	}
}
