package middleware

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dltprivacy/internal/dcrypto"
)

// TestEnvelopeKeyedEncodingIdentical proves the per-epoch precomputed key
// section splices into byte-identical envelopes: the fast path must not
// be able to drift from the canonical encoding the decoder (and every
// recorded envelope) depends on.
func TestEnvelopeKeyedEncodingIdentical(t *testing.T) {
	_, ps := enroll(t, "alice", "bob", "carol")
	members := map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
		"carol": ps["carol"].key.Public(),
	}
	env, err := SealEnvelope("deals", []byte("10 tons of steel"), members)
	if err != nil {
		t.Fatalf("SealEnvelope: %v", err)
	}
	ids := []string{"alice", "bob", "carol"}
	canonical := encodeEnvelopeBinary(&env, nil)
	keyed := encodeEnvelopeBinaryKeyed(&env, encodeEnvelopeKeys(env.Keys, ids))
	if !bytes.Equal(canonical, keyed) {
		t.Fatalf("keyed encoding differs from canonical:\n  canonical %d bytes\n  keyed     %d bytes",
			len(canonical), len(keyed))
	}
	back, err := decodeEnvelopeBinary(keyed)
	if err != nil {
		t.Fatalf("decode keyed envelope: %v", err)
	}
	got, err := OpenEnvelope(back, "bob", ps["bob"].key)
	if err != nil {
		t.Fatalf("OpenEnvelope: %v", err)
	}
	if string(got) != "10 tons of steel" {
		t.Fatalf("payload = %q", got)
	}
}

// TestEncryptRotationSingleFlight hits a cold channel with many
// concurrent seals and requires exactly one epoch install: rotation is
// single-flighted, so a thundering herd (every edge connection's first
// submission after a key expiry) costs one O(members) wrap, not one per
// caller.
func TestEncryptRotationSingleFlight(t *testing.T) {
	_, ps := enroll(t, "alice", "bob", "carol")
	dir := NewSyncDirectory()
	dir.SetChannel("deals", map[string]dcrypto.PublicKey{
		"alice": ps["alice"].key.Public(),
		"bob":   ps["bob"].key.Public(),
		"carol": ps["carol"].key.Public(),
	})
	enc, err := NewCachedEncrypt(dir, time.Hour, nil)
	if err != nil {
		t.Fatalf("NewCachedEncrypt: %v", err)
	}
	const callers = 32
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := &Request{Channel: "deals", Principal: "alice",
				Payload: []byte("x"), authenticated: true}
			errs <- enc.Handle(context.Background(), req,
				func(context.Context, *Request) error { return nil })
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("Handle: %v", err)
		}
	}
	if got := enc.Rotations(); got != 1 {
		t.Fatalf("rotations = %d, want 1 (cold-channel herd must single-flight the wrap)", got)
	}
}

// TestSessionOpenSweepThrottled verifies the Open-path sweep is interval
// bound — an open inside the throttle window must not walk the table —
// while expiry enforcement stays exact through resolve's lazy eviction.
func TestSessionOpenSweepThrottled(t *testing.T) {
	clock := newFakeClock()
	ca, ps := enrollAt(t, clock.now, "alice")
	mgr := mustManager(t, ca, 10*time.Minute, 5*time.Minute, clock.now)
	if mgr.sweepEvery != time.Second {
		t.Fatalf("sweepEvery = %v, want 1s (production windows cap at one second)", mgr.sweepEvery)
	}

	a := openSession(t, mgr, ps["alice"])
	clock.advance(6 * time.Minute) // a is now idle-expired but unswept
	mgr.mu.Lock()
	mgr.lastSweep = clock.now() // simulate a sweep that just ran
	mgr.mu.Unlock()

	openSession(t, mgr, ps["alice"])
	if got := mgr.Len(); got != 2 {
		t.Fatalf("sessions = %d, want 2 (open inside the throttle window must skip the sweep)", got)
	}
	// The throttle never weakens enforcement: resolving the stale token
	// still fails, and evicts it.
	if _, _, _, err := mgr.resolve(a.Token, ""); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("stale resolve = %v, want ErrSessionExpired", err)
	}
	if got := mgr.Len(); got != 1 {
		t.Fatalf("sessions after stale resolve = %d, want 1 (lazy eviction)", got)
	}
	// Past the interval, the sweep runs again on open.
	clock.advance(2 * time.Second)
	openSession(t, mgr, ps["alice"])
	if got := mgr.Len(); got != 2 {
		t.Fatalf("sessions = %d, want 2", got)
	}
}
