// Package middleware composes the library's confidentiality mechanisms into
// a single configurable pipeline, the subsystem the paper's title promises:
// a middleware through which enterprise clients submit transactions without
// hand-wiring PKI, envelope encryption, leakage accounting, and platform
// backends themselves.
//
// The building block is a Stage: an interceptor with a Name and a
// Handle(ctx, req, next) method. Stages compose into a Chain ending in a
// terminal Handler (normally the Gateway's submit-to-ordering step). A
// declarative Config — an ordered list of named stages with string
// parameters, in the spirit of Django middleware lists and Traefik
// middleware blocks — assembles a chain via Build, so deployments choose
// their confidentiality posture by configuration, not code.
//
// # Stage ordering rules
//
// Build validates stage order at construction time; a misconfigured
// pipeline is an error before the first transaction, never a silent leak:
//
//   - Stage names must be known and appear at most once.
//   - "authn" must precede "encrypt": an envelope must never be sealed for
//     a submission whose origin was not verified, otherwise the pipeline
//     would launder unauthenticated payloads into member-only ciphertext.
//   - "authn" must precede "ratelimit" when both are present: buckets are
//     keyed by principal, and throttling unverified names lets one client
//     starve another by spoofing its identity.
//   - "retry" must precede "breaker" when both are present: each retry
//     attempt must consult the breaker, so a tripped backend fails fast
//     instead of being hammered by the retry loop.
//   - "batch" must be the final stage: it hands aggregated submissions
//     directly to the terminal handler, and any stage after it would be
//     skipped for batched requests.
//
// The built-in stages are authn (submitter certificate + signature
// verification against the consortium CA), encrypt (per-channel envelope
// encryption to member keys), audit (leakage accounting into
// internal/audit), ratelimit (token bucket per principal), retry (bounded
// backoff on transient transport errors), breaker (per-backend circuit
// breaker), and batch (aggregate submissions before ordering).
//
// The Gateway fronts the platform backends: it runs every submission
// through the chain, submits the resulting transaction to an
// internal/ordering backend, and relays cut blocks to registered platform
// adapters (Fabric, Corda, Quorum). It registers as an internal/transport
// endpoint so remote clients submit over the network substrate, is safe
// for concurrent use, and exposes per-stage Stats counters.
package middleware
