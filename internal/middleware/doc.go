// Package middleware composes the library's confidentiality mechanisms into
// a single configurable pipeline, the subsystem the paper's title promises:
// a middleware through which enterprise clients submit transactions without
// hand-wiring PKI, envelope encryption, leakage accounting, and platform
// backends themselves.
//
// The building block is a Stage: an interceptor with a Name and a
// Handle(ctx, req, next) method. Stages compose into a Chain ending in a
// terminal Handler (normally the Gateway's submit-to-ordering step). A
// declarative Config — an ordered list of named stages with string
// parameters, in the spirit of Django middleware lists and Traefik
// middleware blocks — assembles a chain via Build, so deployments choose
// their confidentiality posture by configuration, not code.
//
// # Stage ordering rules
//
// Build validates stage order at construction time; a misconfigured
// pipeline is an error before the first transaction, never a silent leak:
//
//   - Stage names must be known and appear at most once.
//   - "session" must precede "authn" when both are present: token-bearing
//     requests short-circuit the full PKI check, so the cheap path must
//     run first.
//   - "encrypt" needs "authn" or "session" before it: an envelope must
//     never be sealed for a submission whose origin was not verified,
//     otherwise the pipeline would launder unauthenticated payloads into
//     member-only ciphertext.
//   - "authn" and "session" must precede "ratelimit" when present:
//     buckets are keyed by principal, and throttling unverified names lets
//     one client starve another by spoofing its identity.
//   - "retry" must precede "breaker" when both are present: each retry
//     attempt must consult the breaker, so a tripped backend fails fast
//     instead of being hammered by the retry loop.
//   - "batch" must be the final stage: it hands aggregated submissions
//     directly to the terminal handler, and any stage after it would be
//     skipped for batched requests.
//
// These rules are not a hard-coded matrix: each stage declares its own
// constraints when it registers (see "Extending the pipeline" below), and
// validate applies whatever the registry holds. StageUsage renders the
// full current rule set.
//
// The built-in stages are session (token-bound amortized authentication,
// below), authn (submitter certificate + signature verification against
// the consortium CA), encrypt (per-channel envelope encryption to member
// keys, optionally with an epoch key cache, below), audit (leakage
// accounting into internal/audit), ratelimit (token bucket per principal,
// with idle buckets evicted once they would have refilled completely),
// retry (bounded backoff on transient transport errors), breaker
// (per-backend circuit breaker; requests with no backend share a
// per-channel circuit), and batch (aggregate submissions before ordering;
// group release is detached from the filling caller's cancellation, since
// buffered members were already acknowledged), plus the four privacy
// stages below.
//
// # Privacy stages
//
// Four stages lift the paper's advanced-privacy workloads out of
// hand-wired example code and into the declarative pipeline; each consumes
// a client-attached wire blob from Request.Meta (never covered by the
// request digest, carried by both codecs, size-capped before decode) and
// replaces it with a compact audit note on success:
//
//   - zkproof (mode=range, bits=1..64, optional channel filter) admits a
//     submission only with a valid Pedersen range proof binding the
//     hidden value to the request's principal and channel. Clients attach
//     one with AttachRangeProof or AttachSufficientFundsProof; failures
//     are ErrProofRequired / ErrProofInvalid.
//   - anoncred (mode=present, attrs=k=v+..., scope=...) authenticates a
//     one-show anonymous-credential presentation in place of certificate
//     authn: the gateway learns "a credentialed member" plus a
//     scope-exclusive pseudonym (stable inside the scope, unlinkable
//     across scopes) and sets it as the principal. It counts as
//     authentication for every downstream rule; clients attach with
//     AttachPresentation. Needs Env.AnonCredKey.
//   - attest (mode=tee, bind=input|output|off) admits only submissions
//     carrying a TEE attestation chained to the manufacturer key and
//     enclave measurement pinned in Env.Attestation, with the payload
//     hash-bound to the attested input or output under bind. Clients
//     attach with AttachAttestation.
//   - aggregate (mode=paillier, size=N) is a terminal collector:
//     per-channel groups of N Paillier aggregands (EncodeAggregand) are
//     acknowledged, held, and homomorphically summed; only the combined
//     ciphertext is ordered, under the "aggregated" principal with
//     contributor annotations scrubbed. Needs Env.Aggregator; the
//     collector decrypts with DecryptAggregate.
//
// # Extending the pipeline
//
// The stage set is a registry, not a closed enum. A stage registers once
// (an init function in its own file) with a declarative definition:
//
//	func init() {
//		mustRegisterStage(stageDef{
//			name:   "mystage",
//			desc:   "one-line summary for StageUsage",
//			params: []paramSpec{{"size", "group size (default 8)"}},
//			after:  []orderRule{{other: StageAuthn, why: "needs a verified principal"}},
//			build: func(p *params, sc StageConfig, env Env) (Stage, error) {
//				size := p.intVal("size", 8)
//				...
//			},
//		})
//	}
//
// The definition carries everything Config.validate and buildStage need,
// so neither has stage-specific code: declared params (unknown keys fail
// fast, listing the known ones), ordering constraints (follows — at least
// one of a set must run earlier; after/before — pairwise precedence;
// conflicts — mutual exclusion; terminal — nothing may follow), a
// countsAs alias so a stage can satisfy another's follows-requirement
// (anoncred counts as authn), and the constructor. Every constraint has a
// why string that becomes the error message, which is how the pre-registry
// error texts survived the refactor verbatim. registerStage rejects
// duplicate names, reserved characters, duplicate params, and any rule set
// that would close an ordering cycle with the stages already registered —
// a failed registration leaves no trace. The params helper wraps all
// value parsing so every bad knob reports uniformly under ErrBadConfig.
//
// Registered stages are first-class everywhere: RegisteredStages and
// StageUsage enumerate them, ParseStages compiles the compact text form
// ("session(reqauth=mac)|authn|encrypt|audit", with name=mode sugar) used
// by cmd/gateway's -stages flag, instrument wraps them into the same
// StageStats and confmw_stage_latency_seconds series as the built-ins,
// and the config test matrix exercises their declared rules.
//
// # Session lifecycle
//
// A client opens a session with a signed SessionHello: the SessionManager
// performs the full authn verification — certificate chains to the pinned
// CA key, identity matches, handshake signature verifies — exactly once,
// and returns an unguessable token plus expiry. The hello signature covers
// a nonce and issue time; stale hellos are rejected (ErrStaleHello) and
// nonces are remembered across the freshness window (ErrReplayedHello), so
// a recorded handshake cannot be replayed to mint tokens. Subsequent submissions
// carry the token and a per-request signature over the request digest; the
// session stage binds them to the cached verified principal without
// touching the certificate again. Requests without a token pass through to
// the authn stage untouched, so one chain serves both traffic kinds.
//
// Sessions end three ways, each observable distinctly: an explicit Close
// (token becomes unknown, ErrNoSession — indistinguishable from a forged
// token by design), the hard TTL, or the idle window (both
// ErrSessionExpired, with the session evicted on detection). The manager
// additionally sweeps expired sessions from the Open path — throttled to
// an interval, so an abandoned client population cannot grow the table
// without bound while a 100k-session open flood never pays a full table
// walk per handshake. A compromised token alone cannot forge traffic:
// every submission still needs a signature under the principal's private
// key — or, under reqauth=mac (below), a MAC under the per-session key
// from the grant.
//
// # Network edge and session binding
//
// Sessions opened over the real TCP edge (internal/netedge) are bound to
// their transport connection: OpenBound stamps the session with the
// connection's identity string, and every subsequent resolve must present
// the same identity or fail with ErrSessionBound. A token captured in
// flight — or exfiltrated from a compromised client — is therefore
// useless from any other connection: the thief would need to hijack the
// original TCP stream itself, which TCP sequence randomization and the
// MAC on every request already guard. Sessions opened through Open (the
// in-process transport path) stay unbound and resolve from anywhere,
// preserving every pre-edge caller.
//
// Binding also gives connection teardown exact semantics: the manager
// indexes bound tokens per transport (byTransport), so EvictTransport —
// wired to the edge's connection-close hook — reaps precisely the dead
// connection's sessions without scanning the table. The eviction shows up
// in SessionStats.Evicted and confmw_sessions_evicted_total; clients that
// reconnect simply open fresh sessions. The binding check rides the
// resolve fast path as one string compare under the stripe read lock —
// no extra lock, no allocation — so the edge pays nothing for it at
// steady state.
//
// # Performance
//
// The session path exists to push steady-state per-request cost toward
// the symmetric-crypto floor; three knobs finish the job:
//
//   - reqauth (session stage parameter, "sig" default | "mac"). Under
//     "mac", Open derives a per-session HMAC-SHA256 key via HKDF — salted
//     with the handshake transcript digest, so the key is rooted in the
//     very PKI handshake it amortizes — and returns it in the
//     SessionGrant. Steady-state submissions then carry MACRequest output
//     instead of an ECDSA signature: a ~0.5µs pooled, allocation-free
//     verify in place of a ~80µs public-key operation. The trust argument:
//     the key is minted only after full certificate verification, is bound
//     to one session, travels the same channel the bearer token already
//     does, and dies with the session — expiry, close, or revocation (a
//     revoked certificate evicts the session and with it the server's
//     copy of the key, so the fast path cannot outlive trust; see
//     BenchmarkGatewaySessionMAC and the revocation suite). Requests
//     without a MAC fall back to the signature path, so first-contact and
//     mixed populations keep working; sessionless traffic still flows
//     through the authn stage unchanged.
//   - Config.Codec ("json" default | "binary"). The binary v2 framing is
//     a length-prefixed encoding for submissions and envelopes: no field
//     names, no base64, no reflection; decodes alias the inbound buffer
//     and encodes are a single exactly-sized allocation. Clients ask for
//     it per session (SessionHello.Codec) and the grant reports what the
//     gateway offers; JSON submissions are always accepted (the framings
//     are sniffed apart by first byte), so enabling binary never strands
//     a client. ParseEnvelope likewise reads both framings.
//   - Striped, read-mostly caches. The session token table is sharded
//     across independent RWMutex stripes keyed by token hash, so resolve —
//     the per-request path — takes one read lock on one stripe, with idle
//     clocks and counters atomic; opens, sweeps, the per-principal cap,
//     and revocation deltas serialize on a separate control mutex. The
//     encrypt stage precomputes the per-channel associated data and the
//     sealing AEAD once per epoch, and over a GenerationalDirectory
//     (SyncDirectory is the stock implementation) caches the member-set
//     fingerprint per (channel, directory generation, exclusion
//     generation), so steady-state membership checks cost two integer
//     compares instead of a sort-and-hash. Digest and MAC computations
//     run on pooled hash states.
//
// BenchmarkGatewaySessionMAC and BenchmarkGatewayParallel hold the
// resulting claim in CI — reqauth=mac is at least 2x lower ns/op and at
// least 50% fewer allocs/op than the signature/JSON session baseline
// (measured ~11x and ~2.6x with the binary codec) — via cmd/benchgate
// speedup rules, and the benchmark gate tracks ns/op, B/op, and allocs/op
// against bench_baseline.json.
//
// # Channel key rotation
//
// With a key cache (encrypt parameter "keyttl" > 0), the encrypt stage
// wraps a channel data key to every member once per (channel, epoch) and
// reuses it: each submission pays one AES-GCM seal instead of one hybrid
// encryption per member. The key rotates onto a fresh epoch — new data
// key, new wraps — when the epoch TTL elapses, when the channel's member
// set changes in the Directory (detected by fingerprint, so a joiner never
// opens pre-join traffic and a leaver's key is dropped from new wraps), or
// on an explicit Encrypt.Rotate / Gateway.RotateChannelKey call (e.g.
// after a revocation). Envelopes record their epoch.
//
// # Revocation
//
// Amortizing authentication into sessions and key wraps into epochs opens
// a window: by default, trust decisions outlive the certificates they were
// rooted in. The revocation plane closes it. Env.Revoker connects the
// pipeline to a revocation authority (pki.CA implements it: a monotonic
// revocation epoch, a RevokedSince delta read, an IsRevoked point query,
// and — as a RevocationSource — an OnRevoke push hook the gateway
// subscribes to at construction and releases on Gateway.Close, so a
// gateway shorter-lived than its CA does not leak the subscription).
//
// The session stage declares its checking strategy with the "revokecheck"
// parameter, validated at Build like every other knob:
//
//   - "off" (default): sessions are never checked; a revoked certificate's
//     session lives until TTL/idle expiry.
//   - "resolve": every token resolution probes the revoker's version (one
//     lock-free load while nothing changes) and applies the delta when it
//     moved — revocation is enforced on the very next request, at a
//     measured ~1-5% of the session hot path (BenchmarkGatewayRevokeCheck,
//     held by the CI bench gate).
//   - "sweep": resolutions stay revoker-free; the delta is applied every
//     "revokesweep" (default 30s) and on push/admin notification — a
//     bounded staleness window instead of a per-request probe.
//
// Guarantees, in any checking mode but "off": opening a session with a
// revoked certificate fails with ErrSessionRevoked; a session whose
// certificate is revoked is evicted at the next delta application
// (instantly under a push-capable revoker), and its token answers
// ErrSessionRevoked — distinct from ErrNoSession and ErrSessionExpired, so
// clients can tell trust withdrawal from ordinary eviction — until the
// session's original expiry, after which the tombstone decays. Eviction is
// serial-exact: revoking a superseded certificate does not kill sessions
// rooted in its replacement. An explicit session.close always degrades the
// token to unknown, tombstone included, and closing an already-evicted
// token is an idempotent no-op with no counter skew.
//
// Envelope encryption follows the same plane independently of the session
// mode: when the gateway learns of an identity-certificate revocation (push
// from a RevocationSource, the revocation.notify admin topic, or a direct
// SyncRevocations call), the revoked identity is excluded from every
// member set before sealing and every cached channel key wrapped to it is
// invalidated, so the channel's next submission installs a fresh epoch the
// revoked member cannot unwrap. The revocation.notify topic carries no
// authority — it only triggers a pull from the configured Revoker — so it
// needs no authentication; its reply reports the epoch reached and the
// sessions evicted. Each revocation lands in the audit log as a
// ClassIdentity observation by the gateway operator
// ("revoked:<identity>#<serial>@<epoch>"), and GatewayStats exposes
// SessionsRevoked, KeyEpochsRevokedRotations, and RevocationSweeps.
//
// Routine key rotation is not a withdrawal: when the revoked serial was
// already superseded by a re-enrollment (pki.Revocation.Superseded), the
// identity keeps its envelope membership — only sessions rooted in the old
// certificate die. An identity revoked outright and later re-enrolled is
// restored with Gateway.ReadmitMember, which lifts the envelope exclusion
// and lets its channels re-key to include it on their next submission.
//
// # Sharded ordering topologies
//
// A single ordering node bounds aggregate throughput: every channel's
// block cutting funnels through one sequencer. The gateway therefore
// accepts an ordering.ShardedBackend transparently — it implements
// ordering.Backend — and Config declares the topology so misconfiguration
// fails at construction like every other knob:
//
//   - Config.Shards names the expected shard count. Zero accepts any
//     backend; a positive count requires the gateway's backend to be a
//     ShardedBackend with exactly that many shards.
//   - Config.ShardPins maps channels to explicit shard indices, overriding
//     consistent hashing for hot channels. Every index must lie inside
//     [0, Shards); the pins are installed on the backend before any
//     traffic, and a pin that would move a channel with live subscribers
//     is rejected (its block chain would fork across shards).
//
// Routing is consistent hashing over the channel name (deterministic
// across processes), so each channel is owned by exactly one shard and the
// per-channel delivery serialization the ordering layer guarantees is
// preserved unchanged; sharding divides only the cross-channel contention
// on each node's sequencer. GatewayStats.Shards exposes per-shard routed
// transactions, delivered blocks, and pinned-channel counts, alongside
// GatewayStats.Sessions (sessions opened, expired at TTL/idle, evicted by
// the per-principal cap) and GatewayStats.KeyEpochsRotated (encrypt
// data-key epoch installs) — the counters session hardening and key
// rotation are monitored by. BenchmarkGatewaySharded holds the scaling
// claim: near-linear aggregate throughput at 1/2/4 shards under
// multi-channel concurrent load, enforced by the CI benchmark gate.
//
// # Observability
//
// Every stage is wrapped by an instrument layer feeding two timing views.
// StageStats.Nanos is inclusive wall time — the stage plus everything
// downstream of it, because Handle(ctx, req, next) brackets the rest of
// the chain — which is the right number for "where does a request spend
// its life" but double-counts when summed across stages.
// StageStats.ExclusiveNanos subtracts the inclusive time of the direct
// downstream calls, so the per-stage histograms
// (confmw_stage_latency_seconds{stage=...}, exported by
// Chain.RegisterMetrics / Gateway.RegisterMetrics into an
// internal/telemetry Registry) measure only the stage's own work and sum
// to the pipeline total. The subtraction is exact, not sampled, and
// handles re-entrant stages: a retry stage that calls next three times
// accumulates all three attempts as downstream (its exclusive time is the
// backoff bookkeeping), and a batch stage that absorbs a request without
// calling next at all is charged its full inclusive time, which is
// correct because batch is always the terminal stage.
//
// Metric names follow confmw_<subsystem>_<name>{labels}: stage latency
// histograms and call/error counters, gateway submitted/ordered/rejected
// totals, session lifecycle counters and the live-session gauge, per-shard
// routing counters, revocation sweep and epoch series, and key-epoch
// rotation counters — one registry, one scrape. cmd/gateway serves the
// registry at /metrics (Prometheus text format 0.0.4) on the -telemetry
// listen address, next to /statusz (the GatewayStats snapshot as JSON),
// /tracez, and /debug/pprof.
//
// Sampled request tracing rides the same instrument layer at zero cost to
// unsampled requests. Config.Trace ("off" default, or a positive N)
// samples one submission in N: the gateway assigns a trace ID, each
// instrumented stage appends a span (inclusive + exclusive duration,
// error), and the finished trace lands in a bounded in-memory ring
// dumpable via /tracez. A request that arrives with a wire-carried
// TraceID — the binary v2 frame carries it as one uvarint, JSON as an
// omitempty field, and SessionHello annotates session.open the same way —
// bypasses the sampler entirely, so a caller tracing a specific request
// always gets its trace. The TraceID is observability annotation, not
// authority: it is excluded from request digests, signatures, and MACs.
//
// The Gateway fronts the platform backends: it runs every submission
// through the chain, submits the resulting transaction to an
// internal/ordering backend, and relays cut blocks to registered platform
// adapters (Fabric, Corda, Quorum); re-binding an already-bound adapter is
// a no-op. It registers as an internal/transport endpoint serving
// gateway.submit, session.open, and session.close, running requests under
// the caller-supplied context so server-side deadlines reach the chain,
// is safe for concurrent use, and exposes per-stage Stats counters.
package middleware
