package workload

import (
	"fmt"
	"math/rand"
)

// Trade is one synthetic trade record.
type Trade struct {
	ID          string
	Buyer       string
	Seller      string
	Goods       string
	AmountCents int64
	Payload     []byte
}

// Topology is a synthetic consortium layout.
type Topology struct {
	Orgs     []string
	Channels [][]string // member lists
}

// Generator produces deterministic workloads from a seed.
type Generator struct {
	rng *rand.Rand
}

// New creates a generator with the given seed.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

var goodsCatalog = []string{
	"steel coils", "wheat", "microcontrollers", "cotton bales",
	"industrial pumps", "solar panels", "pharmaceutical reagents", "timber",
}

// Orgs returns n synthetic organization names.
func (g *Generator) Orgs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("org-%02d", i)
	}
	return out
}

// Topology builds a consortium with n organizations and c channels of the
// given size, membership drawn at random (deterministically).
func (g *Generator) Topology(orgs, channels, channelSize int) (Topology, error) {
	if channelSize > orgs {
		return Topology{}, fmt.Errorf("workload: channel size %d exceeds org count %d", channelSize, orgs)
	}
	if channelSize < 2 {
		return Topology{}, fmt.Errorf("workload: channel size must be at least 2")
	}
	topo := Topology{Orgs: g.Orgs(orgs)}
	for c := 0; c < channels; c++ {
		perm := g.rng.Perm(orgs)[:channelSize]
		members := make([]string, channelSize)
		for i, idx := range perm {
			members[i] = topo.Orgs[idx]
		}
		topo.Channels = append(topo.Channels, members)
	}
	return topo, nil
}

// Trades yields n synthetic trades between members of the given channel.
func (g *Generator) Trades(members []string, n, payloadBytes int) ([]Trade, error) {
	if len(members) < 2 {
		return nil, fmt.Errorf("workload: need at least 2 members, got %d", len(members))
	}
	out := make([]Trade, n)
	for i := range out {
		bi := g.rng.Intn(len(members))
		si := g.rng.Intn(len(members) - 1)
		if si >= bi {
			si++
		}
		payload := make([]byte, payloadBytes)
		for j := range payload {
			payload[j] = byte('a' + g.rng.Intn(26))
		}
		out[i] = Trade{
			ID:          fmt.Sprintf("trade-%06d", i),
			Buyer:       members[bi],
			Seller:      members[si],
			Goods:       goodsCatalog[g.rng.Intn(len(goodsCatalog))],
			AmountCents: int64(g.rng.Intn(10_000_000) + 100),
			Payload:     payload,
		}
	}
	return out, nil
}

// Ballots returns n synthetic yes/no vote maps for the given parties.
func (g *Generator) Ballots(parties []string, n int) []map[string]bool {
	out := make([]map[string]bool, n)
	for i := range out {
		votes := make(map[string]bool, len(parties))
		for _, p := range parties {
			votes[p] = g.rng.Intn(2) == 1
		}
		out[i] = votes
	}
	return out
}
