// Package workload generates deterministic synthetic enterprise workloads
// for the benchmark harness and the load generator: trade transactions,
// letter-of-credit parameter sets, and consortium topologies (org rosters
// and channel member lists). Generation is seeded so every run replays the
// identical sequence — benchmark comparisons across mechanisms stay fair,
// and a cmd/loadgen run against a live gateway is reproducible from its
// -seed flag alone.
//
// The shapes mirror the paper's use cases: Trades are the confidential
// bilateral records the envelope-encryption pipeline carries, Orgs names
// the consortium principals (org-00, org-01, ...) that enroll with the
// PKI, and Topology lays channels over member subsets the way a
// permissioned network partitions visibility. Payload sizes are
// parameterized so benchmarks can sweep them without changing the
// generator.
package workload
