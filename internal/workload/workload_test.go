package workload

import (
	"reflect"
	"testing"
)

func TestDeterministic(t *testing.T) {
	g1 := New(42)
	g2 := New(42)
	t1, err := g1.Trades([]string{"a", "b", "c"}, 10, 32)
	if err != nil {
		t.Fatalf("Trades: %v", err)
	}
	t2, _ := g2.Trades([]string{"a", "b", "c"}, 10, 32)
	if !reflect.DeepEqual(t1, t2) {
		t.Fatal("same seed must generate identical trades")
	}
	g3 := New(43)
	t3, _ := g3.Trades([]string{"a", "b", "c"}, 10, 32)
	if reflect.DeepEqual(t1, t3) {
		t.Fatal("different seeds should diverge")
	}
}

func TestTradesWellFormed(t *testing.T) {
	g := New(1)
	trades, err := g.Trades([]string{"a", "b"}, 50, 16)
	if err != nil {
		t.Fatalf("Trades: %v", err)
	}
	for _, tr := range trades {
		if tr.Buyer == tr.Seller {
			t.Fatalf("trade %s has buyer == seller", tr.ID)
		}
		if tr.AmountCents <= 0 {
			t.Fatalf("trade %s has non-positive amount", tr.ID)
		}
		if len(tr.Payload) != 16 {
			t.Fatalf("trade %s payload = %d bytes", tr.ID, len(tr.Payload))
		}
	}
}

func TestTradesValidation(t *testing.T) {
	g := New(1)
	if _, err := g.Trades([]string{"solo"}, 1, 8); err == nil {
		t.Fatal("single member must be rejected")
	}
}

func TestTopology(t *testing.T) {
	g := New(7)
	topo, err := g.Topology(10, 4, 3)
	if err != nil {
		t.Fatalf("Topology: %v", err)
	}
	if len(topo.Orgs) != 10 || len(topo.Channels) != 4 {
		t.Fatalf("topology = %d orgs, %d channels", len(topo.Orgs), len(topo.Channels))
	}
	known := make(map[string]bool)
	for _, o := range topo.Orgs {
		known[o] = true
	}
	for _, members := range topo.Channels {
		if len(members) != 3 {
			t.Fatalf("channel size = %d", len(members))
		}
		seen := make(map[string]bool)
		for _, m := range members {
			if !known[m] || seen[m] {
				t.Fatalf("bad member %q in %v", m, members)
			}
			seen[m] = true
		}
	}
}

func TestTopologyValidation(t *testing.T) {
	g := New(7)
	if _, err := g.Topology(2, 1, 3); err == nil {
		t.Fatal("oversize channel must be rejected")
	}
	if _, err := g.Topology(5, 1, 1); err == nil {
		t.Fatal("size-1 channel must be rejected")
	}
}

func TestBallots(t *testing.T) {
	g := New(3)
	ballots := g.Ballots([]string{"a", "b", "c"}, 5)
	if len(ballots) != 5 {
		t.Fatalf("ballots = %d", len(ballots))
	}
	for _, b := range ballots {
		if len(b) != 3 {
			t.Fatalf("ballot has %d votes", len(b))
		}
	}
}
