module dltprivacy

go 1.22
