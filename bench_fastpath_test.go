package dltprivacy_test

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
)

// atomicBackend counts committed transactions without platform simulation;
// unlike nullBackend it is safe under the parallel benchmarks, where blocks
// from different channels commit concurrently.
type atomicBackend struct{ txs atomic.Int64 }

func (a *atomicBackend) Name() string { return "null" }

func (a *atomicBackend) Commit(b ledger.Block) error {
	a.txs.Add(int64(len(b.Txs)))
	return nil
}

// fastPathEnv is the session fast-path fixture: a gateway with the session
// (reqauth as configured) + encrypt(keycache) pipeline over a generational
// directory, one open session per member, and fully prepared request
// templates for both the signature and MAC client paths.
type fastPathEnv struct {
	gw   *middleware.Gateway
	sink *atomicBackend
	// sigTemplates carry a per-request signature; macTemplates a
	// per-session MAC and no signature at all.
	sigTemplates []middleware.Request
	macTemplates []middleware.Request
	// macKeys holds each member's session MAC key, for benches that
	// re-authenticate template variants (different payloads or channels).
	macKeys map[string][]byte
}

func newFastPathEnv(b *testing.B, env *gatewayBenchEnv, reqauth, codec string, channels []string, cfgOpts ...func(*middleware.Config)) *fastPathEnv {
	b.Helper()
	dir := middleware.NewSyncDirectory()
	for _, ch := range channels {
		dir.SetChannel(ch, env.memberKeys)
	}
	cfg := middleware.Config{
		Stages: []middleware.StageConfig{
			{Name: middleware.StageSession, Params: map[string]string{"ttl": "1h", "idle": "1h", "reqauth": reqauth}},
			{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "1h"}},
		},
		Codec: codec,
	}
	for _, opt := range cfgOpts {
		opt(&cfg)
	}
	gwEnv := middleware.Env{
		CAKey:     env.ca.PublicKey(),
		Directory: dir,
		Log:       audit.NewLog(),
		Sleep:     func(time.Duration) {},
	}
	gw, err := middleware.NewGateway("bench-gw", cfg, gwEnv, ordering.New("bench-orderer", ordering.VisibilityEnvelope))
	if err != nil {
		b.Fatal(err)
	}
	sink := &atomicBackend{}
	for _, ch := range channels {
		gw.Bind(ch, sink)
	}

	// One handshake per member, outside the timed loop: the cost being
	// amortized is paid here, and under reqauth=mac the grant carries the
	// per-session key the MAC templates are authenticated with.
	mgr := gw.Sessions()
	grants := make(map[string]middleware.SessionGrant, len(env.keys))
	for member, key := range env.keys {
		hello, err := middleware.NewSessionHello(member, env.certs[member], key)
		if err != nil {
			b.Fatal(err)
		}
		grant, err := mgr.Open(hello)
		if err != nil {
			b.Fatal(err)
		}
		grants[member] = grant
	}

	fp := &fastPathEnv{gw: gw, sink: sink, macKeys: make(map[string][]byte, len(grants))}
	for member, grant := range grants {
		fp.macKeys[member] = grant.MacKey
	}
	for i, tmpl := range env.templates {
		ch := channels[i%len(channels)]
		sig := tmpl // struct copy
		sig.Channel = ch
		sig.Cert = pki.Certificate{}
		sig.SessionToken = grants[sig.Principal].Token
		// The template was signed for its original channel; re-sign for
		// the assigned one.
		if err := middleware.SignRequest(&sig, env.keys[sig.Principal]); err != nil {
			b.Fatal(err)
		}
		fp.sigTemplates = append(fp.sigTemplates, sig)

		if reqauth == "mac" {
			mac := sig
			mac.Sig = dcrypto.Signature{} // the MAC path never consults it
			middleware.MACRequest(&mac, grants[mac.Principal].MacKey)
			fp.macTemplates = append(fp.macTemplates, mac)
		}
	}
	return fp
}

// BenchmarkGatewaySessionMAC compares steady-state request authentication
// on an otherwise identical session+keycache pipeline:
//
//   - reqauth=sig: every submission verifies an ECDSA P-256 signature
//     against the session's cached key (the PR-2 fast path).
//   - reqauth=mac: every submission verifies an HMAC under the per-session
//     key from the grant — symmetric, pooled, allocation-free.
//   - reqauth=mac+codec=binary: MAC auth plus the binary envelope framing,
//     dropping the JSON marshal from the seal path.
//
// The acceptance bar (vs the BenchmarkGatewaySession sig/JSON baseline):
// >= 2x lower ns/op and >= 50% fewer allocs/op on the mac variants, held
// by cmd/benchgate speedup rules in CI.
func BenchmarkGatewaySessionMAC(b *testing.B) {
	env := newGatewayBenchEnv(b)
	channels := []string{"deals"}
	cases := []struct {
		name    string
		reqauth string
		codec   string
		mac     bool
	}{
		{name: "reqauth=sig", reqauth: "sig", codec: middleware.CodecJSON},
		{name: "reqauth=mac", reqauth: "mac", codec: middleware.CodecJSON, mac: true},
		{name: "reqauth=mac+codec=binary", reqauth: "mac", codec: middleware.CodecBinary, mac: true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			fp := newFastPathEnv(b, env, tc.reqauth, tc.codec, channels)
			templates := fp.sigTemplates
			if tc.mac {
				templates = fp.macTemplates
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := templates[i%len(templates)]
				if err := fp.gw.Submit(ctx, &req); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if stats := fp.gw.Stats(); stats.Ordered != uint64(b.N) || fp.sink.txs.Load() != int64(b.N) {
				b.Fatalf("ordered %d, backend committed %d, want %d", stats.Ordered, fp.sink.txs.Load(), b.N)
			}
		})
	}
}

// BenchmarkGatewayParallel runs the session fast path under goroutine
// scaling (b.RunParallel): every worker drives its own principal's session
// across multiple channels, exercising the striped session table, the
// read-locked resolve path, and the per-channel encrypt caches under
// contention. The sig variant is the same workload on the signature path,
// so the pair shows how much of the parallel headroom the MAC path frees.
func BenchmarkGatewayParallel(b *testing.B) {
	env := newGatewayBenchEnv(b)
	channels := []string{"deals", "loans", "bonds", "swaps"}
	for _, tc := range []struct {
		name    string
		reqauth string
		codec   string
		mac     bool
	}{
		{name: "reqauth=sig", reqauth: "sig", codec: middleware.CodecJSON},
		{name: "reqauth=mac+codec=binary", reqauth: "mac", codec: middleware.CodecBinary, mac: true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			fp := newFastPathEnv(b, env, tc.reqauth, tc.codec, channels)
			templates := fp.sigTemplates
			if tc.mac {
				templates = fp.macTemplates
			}
			ctx := context.Background()
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					req := templates[int(next.Add(1))%len(templates)]
					if err := fp.gw.Submit(ctx, &req); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			if stats := fp.gw.Stats(); stats.Ordered != uint64(b.N) || fp.sink.txs.Load() != int64(b.N) {
				b.Fatalf("ordered %d, backend committed %d, want %d", stats.Ordered, fp.sink.txs.Load(), b.N)
			}
		})
	}
}
