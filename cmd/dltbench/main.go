// Command dltbench regenerates the paper's tables and figures: Table 1 from
// live capability probes, the Figure 1 decision-tree enumeration, the
// letter-of-credit walkthrough with its leakage matrix, and the per-platform
// §5 claims. Scalability series (E7) live in the root bench_test.go and run
// with `go test -bench=.`.
package main

import (
	"flag"
	"fmt"
	"os"

	"dltprivacy/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dltbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dltbench", flag.ContinueOnError)
	var (
		table1  = fs.Bool("table1", false, "regenerate Table 1 (E1)")
		figure1 = fs.Bool("figure1", false, "enumerate Figure 1 (E2)")
		locRun  = fs.Bool("loc", false, "run the §4 letter-of-credit scenario (E3)")
		fabricR = fs.Bool("fabric", false, "demonstrate §5 Fabric claims (E4)")
		cordaR  = fs.Bool("corda", false, "demonstrate §5 Corda claims (E5)")
		quorumR = fs.Bool("quorum", false, "demonstrate §5 Quorum claims (E6)")
		scaling = fs.Bool("scaling", false, "run the abbreviated §3.4 scalability series (E7)")
		all     = fs.Bool("all", false, "run every report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !(*table1 || *figure1 || *locRun || *fabricR || *cordaR || *quorumR || *scaling) {
		*all = true
	}

	type report struct {
		enabled bool
		gen     func() (string, error)
	}
	reports := []report{
		{*all || *table1, experiments.Table1Report},
		{*all || *figure1, func() (string, error) { return experiments.Figure1Report(), nil }},
		{*all || *locRun, experiments.LetterOfCreditReport},
		{*all || *fabricR, experiments.FabricReport},
		{*all || *cordaR, experiments.CordaReport},
		{*all || *quorumR, experiments.QuorumReport},
		{*all || *scaling, experiments.ScalingReport},
	}
	for _, r := range reports {
		if !r.enabled {
			continue
		}
		out, err := r.gen()
		if err != nil {
			return err
		}
		fmt.Println(out)
	}
	return nil
}
