// Command locdemo runs the paper's §4 letter-of-credit use case end to end
// on the derived design: separate ledger for the trading group, PII
// off-chain behind a hash anchor, zero-knowledge sufficient-funds proof at
// application time, and a final leakage matrix showing the rival
// organization saw nothing.
package main

import (
	"fmt"
	"math/big"
	"os"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/loc"
	"dltprivacy/internal/zkp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "locdemo:", err)
		os.Exit(1)
	}
}

func run() error {
	pii, trade, interactions := loc.DeriveDesign()
	fmt.Println("Design derived from §4 requirements:")
	fmt.Printf("  PII          -> %s\n", pii.Primary)
	fmt.Printf("  trade data   -> %s\n", trade.Primary)
	fmt.Printf("  interactions -> %v\n\n", interactions)

	app, err := loc.NewApp(loc.Config{
		Bank: "BankA", Buyer: "BuyerInc", Seller: "SellerCo",
		ExtraOrgs: []string{"RivalCorp"},
	})
	if err != nil {
		return err
	}

	balance := big.NewInt(1_000_000)
	comm, blinding, err := zkp.CommitValue(balance)
	if err != nil {
		return err
	}
	fmt.Println("BuyerInc applies for a letter of credit over 500 widgets (2,500.00)…")
	id, err := app.Apply("500 widgets", 250_000, []byte("passport M1234567"), balance, comm, blinding)
	if err != nil {
		return err
	}
	fmt.Printf("  %s applied; funds proven in zero knowledge; PII stored off-chain\n", id)

	steps := []struct {
		desc string
		fn   func() error
	}{
		{"BankA issues the letter", func() error { return app.Issue(id) }},
		{"SellerCo ships and records BL-778", func() error { return app.Ship(id, "BL-778") }},
		{"SellerCo presents documents", func() error { return app.Present(id) }},
		{"BankA pays SellerCo", func() error { return app.Pay(id) }},
	}
	for _, s := range steps {
		if err := s.fn(); err != nil {
			return err
		}
		letter, err := app.Get("BankA", id)
		if err != nil {
			return err
		}
		fmt.Printf("  %-38s status=%s\n", s.desc, letter.Status)
	}

	log := app.Network().Log
	fmt.Println("\nLeakage matrix (who saw transaction data):")
	for observer, items := range log.Matrix(audit.ClassTxData) {
		fmt.Printf("  %-16s %d items\n", observer, len(items))
	}
	if log.SawAny("RivalCorp", audit.ClassTxData) || log.SawAny("RivalCorp", audit.ClassPII) {
		return fmt.Errorf("rival observed confidential data")
	}
	fmt.Println("  RivalCorp        nothing ✓")
	if v := log.Violations(app.LeakagePolicy()); len(v) != 0 {
		return fmt.Errorf("policy violations: %v", v)
	}
	fmt.Println("\nLeakage policy: 0 violations")

	if err := app.DeletePII(id); err != nil {
		return err
	}
	fmt.Println("GDPR deletion request honoured: PII erased, on-ledger anchor retained.")
	return nil
}
