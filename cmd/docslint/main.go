// Command docslint keeps the prose honest: for each markdown file named
// on the command line it checks that every relative link resolves to a
// file or directory in the repository, and that every fenced ```go code
// block is syntactically valid and gofmt-clean (go/format.Source accepts
// whole files, declaration lists, and statement lists, so documentation
// snippets don't have to be compilable programs — just real, formatted
// Go). CI runs it over README.md and docs/, so the documentation set
// cannot drift into dead links or pseudo-code that no longer parses.
package main

import (
	"bytes"
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docslint FILE.md ...")
		os.Exit(2)
	}
	failures := 0
	for _, file := range os.Args[1:] {
		for _, problem := range lintFile(file) {
			fmt.Fprintln(os.Stderr, problem)
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d problem(s)\n", failures)
		os.Exit(1)
	}
	fmt.Printf("docslint: %d file(s) clean\n", len(os.Args)-1)
}

// linkPattern matches inline markdown links [text](target). Reference
// definitions and autolinks are rare enough here not to bother with.
var linkPattern = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// lintFile returns every problem found in one markdown file.
func lintFile(path string) []string {
	var problems []string
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	lines := strings.Split(string(data), "\n")
	dir := filepath.Dir(path)

	inFence := false
	fenceLang := ""
	fenceStart := 0
	var fenceBody []string
	for i, line := range lines {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			if !inFence {
				inFence = true
				fenceLang = strings.TrimSpace(strings.TrimPrefix(trimmed, "```"))
				fenceStart = i + 1
				fenceBody = fenceBody[:0]
			} else {
				if fenceLang == "go" {
					if p := checkGoSnippet(path, fenceStart, strings.Join(fenceBody, "\n")); p != "" {
						problems = append(problems, p)
					}
				}
				inFence = false
			}
			continue
		}
		if inFence {
			fenceBody = append(fenceBody, line)
			continue
		}
		for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if p := checkLink(path, dir, i+1, target); p != "" {
				problems = append(problems, p)
			}
		}
	}
	if inFence {
		problems = append(problems, fmt.Sprintf("%s:%d: unterminated code fence", path, fenceStart))
	}
	return problems
}

// checkLink validates one link target; external schemes and in-page
// anchors pass untouched.
func checkLink(path, dir string, line int, target string) string {
	switch {
	case strings.HasPrefix(target, "http://"),
		strings.HasPrefix(target, "https://"),
		strings.HasPrefix(target, "mailto:"),
		strings.HasPrefix(target, "#"):
		return ""
	}
	// Strip an in-file anchor from a relative target.
	if i := strings.IndexByte(target, '#'); i >= 0 {
		target = target[:i]
	}
	if target == "" {
		return ""
	}
	if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
		return fmt.Sprintf("%s:%d: broken link: %s", path, line, target)
	}
	return ""
}

// checkGoSnippet requires the fenced block to be parseable, gofmt-clean
// Go. Leading/trailing blank space and the trailing newline are
// normalized before comparison so authors aren't fighting the fence.
func checkGoSnippet(path string, line int, src string) string {
	trimmed := strings.TrimSpace(src)
	if trimmed == "" {
		return ""
	}
	formatted, err := format.Source([]byte(trimmed))
	if err != nil {
		return fmt.Sprintf("%s:%d: go snippet does not parse: %v", path, line, err)
	}
	if !bytes.Equal(bytes.TrimSpace(formatted), []byte(trimmed)) {
		return fmt.Sprintf("%s:%d: go snippet is not gofmt-formatted", path, line)
	}
	return ""
}
