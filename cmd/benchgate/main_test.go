package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: dltprivacy
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkGatewayChain/baseline(ratelimit-only)-8         	  120000	      9824 ns/op	    2048 B/op	      18 allocs/op
BenchmarkGatewayChain/stages=1(+authn)-8                 	    3000	    402211 ns/op	   12000 B/op	      90 allocs/op
BenchmarkGatewaySession/session(amortized-authn+keycache)	   12000	     95321 ns/op
BenchmarkGatewaySharded/shards=1-8                       	    2000	   1143391 ns/op	    7794 B/op	      22 allocs/op
BenchmarkGatewaySharded/shards=4-8                       	    2000	    290166 ns/op	    7793 B/op	      22 allocs/op
BenchmarkGatewaySharded/shards=4-8                       	    2000	    300500 ns/op	    7793 B/op	      22 allocs/op
PASS
ok  	dltprivacy	6.022s
`

func parseSample(t *testing.T) []Result {
	t.Helper()
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	return results
}

func TestParseBench(t *testing.T) {
	results := parseSample(t)
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5 (duplicates folded): %+v", len(results), results)
	}
	byName := make(map[string]Result)
	for _, r := range results {
		byName[r.Name] = r
	}
	// The -8 GOMAXPROCS suffix is stripped for cross-runner stability.
	chain, ok := byName["BenchmarkGatewayChain/baseline(ratelimit-only)"]
	if !ok {
		t.Fatalf("baseline benchmark missing: %+v", results)
	}
	if chain.Iterations != 120000 || chain.NsPerOp != 9824 || chain.BytesPerOp != 2048 || chain.AllocsPerOp != 18 {
		t.Fatalf("baseline parsed as %+v", chain)
	}
	// A line without B/op and allocs/op still parses.
	if sess, ok := byName["BenchmarkGatewaySession/session(amortized-authn+keycache)"]; !ok || sess.NsPerOp != 95321 || sess.BytesPerOp != 0 {
		t.Fatalf("session parsed as %+v (ok=%v)", sess, ok)
	}
	// Repeated benchmarks keep the lowest ns/op sample.
	if sharded := byName["BenchmarkGatewaySharded/shards=4"]; sharded.NsPerOp != 290166 {
		t.Fatalf("duplicate fold kept %v ns/op, want 290166", sharded.NsPerOp)
	}
}

func TestGate(t *testing.T) {
	current := parseSample(t)
	base := []Result{
		{Name: "BenchmarkGatewayChain/baseline(ratelimit-only)", NsPerOp: 9000},
		{Name: "BenchmarkGatewaySharded/shards=1", NsPerOp: 1100000},
	}
	// 9824 vs 9000 is a 9% regression: inside the 25% tolerance.
	if err := gate(current, base, 0.25); err != nil {
		t.Fatalf("gate within tolerance: %v", err)
	}
	// The same drift fails a 5% tolerance.
	if err := gate(current, base, 0.05); err == nil {
		t.Fatal("9% regression passed a 5% tolerance gate")
	}
	// A gated benchmark missing from the run fails loudly.
	base = append(base, Result{Name: "BenchmarkGone", NsPerOp: 10})
	if err := gate(current, base, 0.25); err == nil || !strings.Contains(err.Error(), "BenchmarkGone") {
		t.Fatalf("missing benchmark not flagged: %v", err)
	}
	// Benchmarks new in this run (absent from baseline) gate nothing.
	if err := gate(current, nil, 0); err != nil {
		t.Fatalf("empty baseline gate: %v", err)
	}
}

func TestCheckSpeedups(t *testing.T) {
	current := parseSample(t)
	pass := []speedupRule{{
		Fast:     "BenchmarkGatewaySharded/shards=4",
		Slow:     "BenchmarkGatewaySharded/shards=1",
		MinRatio: 1.7,
	}}
	if err := checkSpeedups(current, pass); err != nil {
		t.Fatalf("3.9x speedup failed a 1.7x rule: %v", err)
	}
	fail := []speedupRule{{
		Fast:     "BenchmarkGatewaySharded/shards=4",
		Slow:     "BenchmarkGatewaySharded/shards=1",
		MinRatio: 5,
	}}
	if err := checkSpeedups(current, fail); err == nil {
		t.Fatal("3.9x speedup passed a 5x rule")
	}
	missing := []speedupRule{{Fast: "BenchmarkNope", Slow: "BenchmarkGatewaySharded/shards=1", MinRatio: 1}}
	if err := checkSpeedups(current, missing); err == nil || !strings.Contains(err.Error(), "BenchmarkNope") {
		t.Fatalf("missing rule benchmark not flagged: %v", err)
	}
}

func TestUpdateNeedsBaseline(t *testing.T) {
	in := t.TempDir() + "/bench.txt"
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-in", in, "-update"}, nil, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-baseline") {
		t.Fatalf("-update without -baseline = %v, want error naming -baseline", err)
	}
}

func TestSpeedupFlagParsing(t *testing.T) {
	var s speedupFlags
	if err := s.Set("a,b,1.7"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if len(s) != 1 || s[0].Fast != "a" || s[0].Slow != "b" || s[0].MinRatio != 1.7 {
		t.Fatalf("parsed %+v", s)
	}
	for _, bad := range []string{"a,b", "a,b,zero", "a,b,-1"} {
		if err := s.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}
