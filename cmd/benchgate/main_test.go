package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: dltprivacy
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkGatewayChain/baseline(ratelimit-only)-8         	  120000	      9824 ns/op	    2048 B/op	      18 allocs/op
BenchmarkGatewayChain/stages=1(+authn)-8                 	    3000	    402211 ns/op	   12000 B/op	      90 allocs/op
BenchmarkGatewaySession/session(amortized-authn+keycache)	   12000	     95321 ns/op
BenchmarkGatewaySharded/shards=1-8                       	    2000	   1143391 ns/op	    7794 B/op	      22 allocs/op
BenchmarkGatewaySharded/shards=4-8                       	    2000	    290166 ns/op	    7793 B/op	      22 allocs/op
BenchmarkGatewaySharded/shards=4-8                       	    2000	    300500 ns/op	    7793 B/op	      22 allocs/op
PASS
ok  	dltprivacy	6.022s
`

func parseSample(t *testing.T) []Result {
	t.Helper()
	results, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	return results
}

func TestParseBench(t *testing.T) {
	results := parseSample(t)
	if len(results) != 5 {
		t.Fatalf("parsed %d results, want 5 (duplicates folded): %+v", len(results), results)
	}
	byName := make(map[string]Result)
	for _, r := range results {
		byName[r.Name] = r
	}
	// The -8 GOMAXPROCS suffix is stripped for cross-runner stability.
	chain, ok := byName["BenchmarkGatewayChain/baseline(ratelimit-only)"]
	if !ok {
		t.Fatalf("baseline benchmark missing: %+v", results)
	}
	if chain.Iterations != 120000 || chain.NsPerOp != 9824 || chain.BytesPerOp != 2048 || chain.AllocsPerOp != 18 {
		t.Fatalf("baseline parsed as %+v", chain)
	}
	// A line without B/op and allocs/op still parses.
	if sess, ok := byName["BenchmarkGatewaySession/session(amortized-authn+keycache)"]; !ok || sess.NsPerOp != 95321 || sess.BytesPerOp != 0 {
		t.Fatalf("session parsed as %+v (ok=%v)", sess, ok)
	}
	// Repeated benchmarks keep the lowest ns/op sample.
	if sharded := byName["BenchmarkGatewaySharded/shards=4"]; sharded.NsPerOp != 290166 {
		t.Fatalf("duplicate fold kept %v ns/op, want 290166", sharded.NsPerOp)
	}
}

func TestGate(t *testing.T) {
	current := parseSample(t)
	base := []Result{
		{Name: "BenchmarkGatewayChain/baseline(ratelimit-only)", NsPerOp: 9000},
		{Name: "BenchmarkGatewaySharded/shards=1", NsPerOp: 1100000},
	}
	// 9824 vs 9000 is a 9% regression: inside the 25% tolerance.
	if err := gate(current, base, 0.25); err != nil {
		t.Fatalf("gate within tolerance: %v", err)
	}
	// The same drift fails a 5% tolerance.
	if err := gate(current, base, 0.05); err == nil {
		t.Fatal("9% regression passed a 5% tolerance gate")
	}
	// A gated benchmark missing from the run fails loudly.
	base = append(base, Result{Name: "BenchmarkGone", NsPerOp: 10})
	if err := gate(current, base, 0.25); err == nil || !strings.Contains(err.Error(), "BenchmarkGone") {
		t.Fatalf("missing benchmark not flagged: %v", err)
	}
	// Benchmarks new in this run (absent from baseline) gate nothing.
	if err := gate(current, nil, 0); err != nil {
		t.Fatalf("empty baseline gate: %v", err)
	}
}

func TestGateMemoryColumns(t *testing.T) {
	current := parseSample(t)
	// The baseline chain ran at 12 allocs/op and 1500 B/op; the sample's
	// 18 allocs / 2048 B regress both beyond 25%.
	base := []Result{{
		Name:    "BenchmarkGatewayChain/baseline(ratelimit-only)",
		NsPerOp: 9824, BytesPerOp: 1500, AllocsPerOp: 12,
	}}
	err := gate(current, base, 0.25)
	if err == nil {
		t.Fatal("alloc/byte regression passed the gate")
	}
	if !strings.Contains(err.Error(), "allocs/op") || !strings.Contains(err.Error(), "B/op") {
		t.Fatalf("failure does not name the regressed columns: %v", err)
	}
	// Inside tolerance on every column passes.
	base[0].BytesPerOp, base[0].AllocsPerOp = 2000, 17
	if err := gate(current, base, 0.25); err != nil {
		t.Fatalf("in-tolerance memory columns failed: %v", err)
	}
	// A baseline without memory columns (recorded as zero) gates ns only.
	base[0].BytesPerOp, base[0].AllocsPerOp = 0, 0
	if err := gate(current, base, 0.25); err != nil {
		t.Fatalf("zero-column baseline gated memory: %v", err)
	}
}

func TestCheckSpeedups(t *testing.T) {
	current := parseSample(t)
	pass := []speedupRule{{
		Fast:     "BenchmarkGatewaySharded/shards=4",
		Slow:     "BenchmarkGatewaySharded/shards=1",
		MinRatio: 1.7,
	}}
	if err := checkSpeedups(current, pass); err != nil {
		t.Fatalf("3.9x speedup failed a 1.7x rule: %v", err)
	}
	fail := []speedupRule{{
		Fast:     "BenchmarkGatewaySharded/shards=4",
		Slow:     "BenchmarkGatewaySharded/shards=1",
		MinRatio: 5,
	}}
	if err := checkSpeedups(current, fail); err == nil {
		t.Fatal("3.9x speedup passed a 5x rule")
	}
	missing := []speedupRule{{Fast: "BenchmarkNope", Slow: "BenchmarkGatewaySharded/shards=1", MinRatio: 1}}
	if err := checkSpeedups(current, missing); err == nil || !strings.Contains(err.Error(), "BenchmarkNope") {
		t.Fatalf("missing rule benchmark not flagged: %v", err)
	}
}

func TestCheckSpeedupsMetrics(t *testing.T) {
	current := []Result{
		{Name: "fast", NsPerOp: 10, BytesPerOp: 100, AllocsPerOp: 20},
		{Name: "slow", NsPerOp: 100, BytesPerOp: 1000, AllocsPerOp: 80},
	}
	// 4x fewer allocs passes a 2x allocs rule ("at least 50% fewer").
	if err := checkSpeedups(current, []speedupRule{
		{Fast: "fast", Slow: "slow", MinRatio: 2, Metric: "allocs"},
	}); err != nil {
		t.Fatalf("4x alloc win failed a 2x allocs rule: %v", err)
	}
	// ...and fails a 5x allocs rule, naming the metric.
	err := checkSpeedups(current, []speedupRule{
		{Fast: "fast", Slow: "slow", MinRatio: 5, Metric: "allocs"},
	})
	if err == nil || !strings.Contains(err.Error(), "allocs") {
		t.Fatalf("4x alloc win vs 5x allocs rule: %v", err)
	}
	// bytes metric works the same way.
	if err := checkSpeedups(current, []speedupRule{
		{Fast: "fast", Slow: "slow", MinRatio: 10, Metric: "bytes"},
	}); err != nil {
		t.Fatalf("10x bytes win failed a 10x bytes rule: %v", err)
	}
}

func TestUpdateNeedsBaseline(t *testing.T) {
	in := t.TempDir() + "/bench.txt"
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-in", in, "-update"}, nil, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "-baseline") {
		t.Fatalf("-update without -baseline = %v, want error naming -baseline", err)
	}
}

func TestSpeedupFlagParsing(t *testing.T) {
	var s speedupFlags
	if err := s.Set("a,b,1.7"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if len(s) != 1 || s[0].Fast != "a" || s[0].Slow != "b" || s[0].MinRatio != 1.7 || s[0].Metric != "ns" {
		t.Fatalf("parsed %+v", s)
	}
	if err := s.Set("a,b,2.0,allocs"); err != nil {
		t.Fatalf("Set with metric: %v", err)
	}
	if len(s) != 2 || s[1].Metric != "allocs" {
		t.Fatalf("metric rule parsed %+v", s)
	}
	for _, bad := range []string{"a,b", "a,b,zero", "a,b,-1", "a,b,2,latency", "a,b,2,allocs,extra"} {
		if err := s.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}

func TestCheckCeilings(t *testing.T) {
	current := []Result{
		{Name: "BenchmarkGatewayBatchSeal/batch=64", NsPerOp: 950, BytesPerOp: 280, AllocsPerOp: 0},
	}
	pass := []ceilingRule{
		{Name: "BenchmarkGatewayBatchSeal/batch=64", Max: 1000, Metric: "ns"},
		{Name: "BenchmarkGatewayBatchSeal/batch=64", Max: 5, Metric: "allocs"},
	}
	if err := checkCeilings(current, pass); err != nil {
		t.Fatalf("950 ns / 0 allocs failed a 1000 ns + 5 allocs ceiling: %v", err)
	}
	fail := []ceilingRule{{Name: "BenchmarkGatewayBatchSeal/batch=64", Max: 900, Metric: "ns"}}
	err := checkCeilings(current, fail)
	if err == nil || !strings.Contains(err.Error(), "want <= 900") {
		t.Fatalf("950 ns vs 900 ns ceiling = %v", err)
	}
	bytesFail := []ceilingRule{{Name: "BenchmarkGatewayBatchSeal/batch=64", Max: 128, Metric: "bytes"}}
	if err := checkCeilings(current, bytesFail); err == nil || !strings.Contains(err.Error(), "bytes") {
		t.Fatalf("280 B vs 128 bytes ceiling = %v", err)
	}
	missing := []ceilingRule{{Name: "BenchmarkNope", Max: 1000, Metric: "ns"}}
	if err := checkCeilings(current, missing); err == nil || !strings.Contains(err.Error(), "BenchmarkNope") {
		t.Fatalf("missing ceiling benchmark not flagged: %v", err)
	}
}

func TestCeilingFlagParsing(t *testing.T) {
	var c ceilingFlags
	if err := c.Set("a,1000"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if len(c) != 1 || c[0].Name != "a" || c[0].Max != 1000 || c[0].Metric != "ns" {
		t.Fatalf("parsed %+v", c)
	}
	if err := c.Set("a,5,allocs"); err != nil {
		t.Fatalf("Set with metric: %v", err)
	}
	if len(c) != 2 || c[1].Metric != "allocs" {
		t.Fatalf("metric rule parsed %+v", c)
	}
	for _, bad := range []string{"a", "a,zero", "a,-1", "a,0", "a,5,latency", "a,5,allocs,extra"} {
		if err := c.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}
