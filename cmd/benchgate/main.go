// Command benchgate turns `go test -bench` output into a machine-readable
// benchmark report and gates CI on performance regressions, in the spirit
// of cmd/dltbench's report encoders: parse the gateway benchmarks, emit
// BENCH_gateway.json (uploaded as a CI artifact), and fail when any
// benchmark present in the checked-in baseline regresses beyond the
// tolerance — on ns/op, B/op, or allocs/op — or when a required speedup
// ratio (e.g. 4-shard vs 1-shard ordering, or the session MAC path's
// allocation budget) is not met. Speedup rules take an optional fourth
// field naming the metric (ns, allocs, or bytes; ns is the default), so
// "at least 50% fewer allocations" is expressed as a 2.0 allocs rule.
// Ceiling rules ('name,max[,metric]') pin a benchmark to an absolute bar —
// the batched group-seal path's "amortized microsecond per transaction"
// budget is a 1000 ns ceiling plus a 5 allocs ceiling on the batch=64 run.
//
// Typical CI usage:
//
//	go test -run '^$' -bench 'BenchmarkGateway' -benchtime 300x . | tee bench.txt
//	benchgate -in bench.txt -out BENCH_gateway.json \
//	    -baseline bench_baseline.json -tolerance 0.25 \
//	    -speedup 'BenchmarkGatewaySharded/shards=4,BenchmarkGatewaySharded/shards=1,1.7' \
//	    -speedup 'BenchmarkGatewaySessionMAC/reqauth=mac,BenchmarkGatewaySession/session(amortized-authn+keycache),2.0,allocs' \
//	    -ceiling 'BenchmarkGatewayBatchSeal/batch=64,1000,ns' \
//	    -ceiling 'BenchmarkGatewayBatchSeal/batch=64,5,allocs'
//
// Refresh the baseline after an intentional performance change — or when
// the CI runner hardware or Go toolchain shifts enough to move absolute
// ns/op — with -update, which rewrites the baseline file from the current
// run. The -speedup rules are ratios within one run and stay meaningful
// across machines; the baseline gate and any ns -ceiling are only as
// stable as the runner pool (allocs and bytes ceilings are deterministic).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// Result is one parsed benchmark line. When a benchmark appears several
// times (e.g. -count > 1), the lowest ns/op is kept: the least-noise
// sample is the fairest regression signal.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Report is the JSON document benchgate emits and compares against.
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

// speedupRule requires Fast to beat Slow by at least MinRatio on the
// chosen metric: "ns" (ns/op, the default), "allocs" (allocs/op), or
// "bytes" (B/op). An allocs rule of 2.0 is the benchgate form of "at least
// 50% fewer allocations".
type speedupRule struct {
	Fast     string
	Slow     string
	MinRatio float64
	Metric   string
}

// metricOf extracts the rule's metric from a parsed result.
func (r speedupRule) metricOf(res Result) float64 {
	switch r.Metric {
	case "allocs":
		return res.AllocsPerOp
	case "bytes":
		return res.BytesPerOp
	default:
		return res.NsPerOp
	}
}

// ceilingRule requires Name to stay at or below Max on the chosen metric —
// an absolute bar, unlike the baseline gate's relative tolerance. An
// allocs or bytes ceiling is deterministic; an ns ceiling is only as
// stable as the runner pool, so give it the same headroom thought a
// baseline refresh gets.
type ceilingRule struct {
	Name   string
	Max    float64
	Metric string
}

// metricOf extracts the rule's metric from a parsed result.
func (r ceilingRule) metricOf(res Result) float64 {
	switch r.Metric {
	case "allocs":
		return res.AllocsPerOp
	case "bytes":
		return res.BytesPerOp
	default:
		return res.NsPerOp
	}
}

type ceilingFlags []ceilingRule

func (c *ceilingFlags) String() string { return fmt.Sprint(*c) }

func (c *ceilingFlags) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) != 2 && len(parts) != 3 {
		return fmt.Errorf("ceiling rule %q: want name,max[,metric]", v)
	}
	max, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || max <= 0 {
		return fmt.Errorf("ceiling rule %q: bad max %q", v, parts[1])
	}
	rule := ceilingRule{Name: parts[0], Max: max, Metric: "ns"}
	if len(parts) == 3 {
		switch parts[2] {
		case "ns", "allocs", "bytes":
			rule.Metric = parts[2]
		default:
			return fmt.Errorf("ceiling rule %q: unknown metric %q (want ns, allocs, or bytes)", v, parts[2])
		}
	}
	*c = append(*c, rule)
	return nil
}

type speedupFlags []speedupRule

func (s *speedupFlags) String() string { return fmt.Sprint(*s) }

func (s *speedupFlags) Set(v string) error {
	parts := strings.Split(v, ",")
	if len(parts) != 3 && len(parts) != 4 {
		return fmt.Errorf("speedup rule %q: want fast,slow,ratio[,metric]", v)
	}
	ratio, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || ratio <= 0 {
		return fmt.Errorf("speedup rule %q: bad ratio %q", v, parts[2])
	}
	rule := speedupRule{Fast: parts[0], Slow: parts[1], MinRatio: ratio, Metric: "ns"}
	if len(parts) == 4 {
		switch parts[3] {
		case "ns", "allocs", "bytes":
			rule.Metric = parts[3]
		default:
			return fmt.Errorf("speedup rule %q: unknown metric %q (want ns, allocs, or bytes)", v, parts[3])
		}
	}
	*s = append(*s, rule)
	return nil
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		in        = fs.String("in", "", "benchmark output to parse (default stdin)")
		out       = fs.String("out", "", "write the JSON report here (default stdout)")
		baseline  = fs.String("baseline", "", "checked-in baseline report to gate against")
		tolerance = fs.Float64("tolerance", 0.25, "allowed fractional regression (ns/op, B/op, allocs/op) before failing")
		update    = fs.Bool("update", false, "rewrite the baseline from this run instead of gating")
		speedups  speedupFlags
		ceilings  ceilingFlags
	)
	fs.Var(&speedups, "speedup", "required ratio 'fast,slow,minRatio[,metric]' (repeatable; metric ns|allocs|bytes, default ns): slow must be >= minRatio * fast on the metric")
	fs.Var(&ceilings, "ceiling", "absolute bar 'name,max[,metric]' (repeatable; metric ns|allocs|bytes, default ns): the benchmark must report <= max on the metric")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tolerance < 0 {
		return fmt.Errorf("tolerance must be >= 0, got %v", *tolerance)
	}

	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	results, err := parseBench(src)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found")
	}
	report := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	if err := writeReport(report, *out, stdout); err != nil {
		return err
	}
	// The three-column summary lands in the CI log beside the JSON
	// artifact, so a regression is readable without downloading anything.
	// It goes to stderr so piping the stdout report stays clean.
	printTable(report.Benchmarks, os.Stderr)

	if err := checkSpeedups(results, speedups); err != nil {
		return err
	}
	if err := checkCeilings(results, ceilings); err != nil {
		return err
	}
	if *baseline == "" {
		if *update {
			return fmt.Errorf("-update needs -baseline to know which file to rewrite")
		}
		return nil
	}
	if *update {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(*baseline, append(b, '\n'), 0o644)
	}
	base, err := readReport(*baseline)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	return gate(results, base.Benchmarks, *tolerance)
}

// benchLine matches `go test -bench` result lines, e.g.
//
//	BenchmarkGatewayChain/stages=1(+authn)-8   1201   998123 ns/op   2100 B/op   21 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// Optional per-line measurements after ns/op.
var (
	bytesPerOp  = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsPerOp = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

// parseBench extracts benchmark results, stripping the -GOMAXPROCS suffix
// so names stay stable across runner shapes.
func parseBench(r io.Reader) ([]Result, error) {
	byName := make(map[string]int)
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", sc.Text())
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q", sc.Text())
		}
		res := Result{Name: m[1], Iterations: iters, NsPerOp: ns}
		for _, extra := range []struct {
			re  *regexp.Regexp
			dst *float64
		}{{bytesPerOp, &res.BytesPerOp}, {allocsPerOp, &res.AllocsPerOp}} {
			if em := extra.re.FindStringSubmatch(m[4]); em != nil {
				v, err := strconv.ParseFloat(em[1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad measurement in %q", sc.Text())
				}
				*extra.dst = v
			}
		}
		if i, seen := byName[res.Name]; seen {
			if res.NsPerOp < out[i].NsPerOp {
				out[i] = res
			}
			continue
		}
		byName[res.Name] = len(out)
		out = append(out, res)
	}
	return out, sc.Err()
}

// printTable renders the parsed benchmarks as an aligned three-column
// (ns/op, B/op, allocs/op) summary.
func printTable(results []Result, w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "BENCHMARK\tNS/OP\tB/OP\tALLOCS/OP")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%.0f\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	tw.Flush()
}

func writeReport(report Report, path string, stdout io.Writer) error {
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "" {
		_, err = stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func readReport(path string) (Report, error) {
	var report Report
	b, err := os.ReadFile(path)
	if err != nil {
		return report, err
	}
	if err := json.Unmarshal(b, &report); err != nil {
		return report, fmt.Errorf("parse %s: %w", path, err)
	}
	return report, nil
}

// gate fails when any baseline benchmark regressed beyond tolerance — on
// ns/op, B/op, or allocs/op — or vanished from the current run. Benchmarks
// absent from the baseline are new and pass freely (they start gating once
// the baseline is refreshed); a baseline column recorded as zero gates
// nothing, so old baselines without memory columns keep working.
func gate(current, baseline []Result, tolerance float64) error {
	cur := make(map[string]Result, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}
	var failures []string
	for _, base := range baseline {
		got, ok := cur[base.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from this run", base.Name))
			continue
		}
		for _, col := range []struct {
			unit      string
			base, got float64
		}{
			{"ns/op", base.NsPerOp, got.NsPerOp},
			{"B/op", base.BytesPerOp, got.BytesPerOp},
			{"allocs/op", base.AllocsPerOp, got.AllocsPerOp},
		} {
			if col.base <= 0 {
				continue
			}
			limit := col.base * (1 + tolerance)
			if col.got > limit {
				failures = append(failures, fmt.Sprintf("%s: %.0f %s exceeds baseline %.0f %s by more than %.0f%% (limit %.0f)",
					base.Name, col.got, col.unit, col.base, col.unit, tolerance*100, limit))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark regression gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// checkSpeedups enforces the required ratios within the current run.
func checkSpeedups(current []Result, rules []speedupRule) error {
	cur := make(map[string]Result, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}
	var failures []string
	for _, rule := range rules {
		fast, okF := cur[rule.Fast]
		slow, okS := cur[rule.Slow]
		switch {
		case !okF:
			failures = append(failures, fmt.Sprintf("speedup rule: %s missing from this run", rule.Fast))
		case !okS:
			failures = append(failures, fmt.Sprintf("speedup rule: %s missing from this run", rule.Slow))
		case rule.metricOf(fast) <= 0:
			failures = append(failures, fmt.Sprintf("speedup rule: %s reports %.0f %s", rule.Fast, rule.metricOf(fast), rule.Metric))
		default:
			if ratio := rule.metricOf(slow) / rule.metricOf(fast); ratio < rule.MinRatio {
				failures = append(failures, fmt.Sprintf("%s is only %.2fx better than %s on %s, want >= %.2fx",
					rule.Fast, ratio, rule.Slow, rule.Metric, rule.MinRatio))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark speedup gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}

// checkCeilings enforces the absolute bars within the current run. A rule
// naming a benchmark absent from the run fails: a ceiling that silently
// stops applying when the benchmark is renamed guards nothing.
func checkCeilings(current []Result, rules []ceilingRule) error {
	cur := make(map[string]Result, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}
	var failures []string
	for _, rule := range rules {
		res, ok := cur[rule.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("ceiling rule: %s missing from this run", rule.Name))
			continue
		}
		if got := rule.metricOf(res); got > rule.Max {
			failures = append(failures, fmt.Sprintf("%s reports %.0f %s/op, want <= %.0f",
				rule.Name, got, rule.Metric, rule.Max))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("benchmark ceiling gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
