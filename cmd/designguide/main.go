// Command designguide runs the paper's design guide on a requirements
// specification: it reads a JSON requirements object (file argument or
// stdin) and prints the Figure 1 decision with its full path, plus the
// §3.1 interaction and §3.3 business-logic recommendations.
//
// Example input:
//
//	{
//	  "data": {"dataConfidential": true, "deletionRequired": true},
//	  "interactions": {"groupPrivate": true},
//	  "logic": {"needAnyLanguage": true}
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"dltprivacy/internal/guide"
)

// spec is the JSON input format.
type spec struct {
	Data struct {
		DataConfidential        bool `json:"dataConfidential"`
		DeletionRequired        bool `json:"deletionRequired"`
		EncryptedSharingAllowed bool `json:"encryptedSharingAllowed"`
		PartsPrivateToSubset    bool `json:"partsPrivateToSubset"`
		ValidatorsMayRead       bool `json:"validatorsMayRead"`
		HideBusinessLogic       bool `json:"hideBusinessLogic"`
		PrivateToOwnerOnly      bool `json:"privateToOwnerOnly"`
		BooleanProofsEnough     bool `json:"booleanProofsEnough"`
		CollectiveComputation   bool `json:"collectiveComputation"`
		UntrustedNodeAdmin      bool `json:"untrustedNodeAdmin"`
	} `json:"data"`
	Interactions struct {
		GroupPrivate        bool `json:"groupPrivate"`
		SubgroupUnlinkable  bool `json:"subgroupUnlinkable"`
		IndividualAnonymous bool `json:"individualAnonymous"`
	} `json:"interactions"`
	Logic struct {
		HideFromNodeAdmin     bool `json:"hideFromNodeAdmin"`
		NeedAnyLanguage       bool `json:"needAnyLanguage"`
		NeedBuiltInVersioning bool `json:"needBuiltInVersioning"`
	} `json:"logic"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "designguide:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("designguide", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	raw, err := io.ReadAll(in)
	if err != nil {
		return fmt.Errorf("read spec: %w", err)
	}
	var s spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return fmt.Errorf("parse spec: %w", err)
	}

	d := guide.Decide(guide.Requirements(s.Data))
	fmt.Fprintf(stdout, "Transaction confidentiality (Figure 1):\n  primary: %s\n", d.Primary)
	if len(d.Additional) > 0 {
		fmt.Fprintf(stdout, "  additional: %v\n", d.Additional)
	}
	for _, n := range d.Notes {
		fmt.Fprintf(stdout, "  note: %s\n", n)
	}
	fmt.Fprintln(stdout, "  path:")
	for _, step := range d.Path {
		fmt.Fprintf(stdout, "    %s\n", step)
	}

	im := guide.DecideInteractions(guide.InteractionRequirements(s.Interactions))
	fmt.Fprintf(stdout, "\nPrivacy of interactions (§3.1): %v\n", im)

	ld := guide.DecideLogic(guide.LogicRequirements(s.Logic))
	fmt.Fprintf(stdout, "\nBusiness-logic confidentiality (§3.3): %s\n", ld.Primary)
	fmt.Fprintf(stdout, "  criteria: logic-private=%v versioning=%v hides-from-admin=%v any-language=%v\n",
		ld.Criteria.KeepsLogicPrivate, ld.Criteria.InBuiltVersioning,
		ld.Criteria.HidesDataFromAdmin, ld.Criteria.AnyLanguage)
	for _, n := range ld.Notes {
		fmt.Fprintf(stdout, "  note: %s\n", n)
	}

	best, required, ranking := guide.RecommendPlatform(
		guide.Requirements(s.Data),
		guide.InteractionRequirements(s.Interactions),
		guide.LogicRequirements(s.Logic),
	)
	fmt.Fprintf(stdout, "\nPlatform fit (Table 1 ratings against required mechanisms %v):\n", required)
	for _, fs := range ranking {
		fmt.Fprintf(stdout, "  %-7s score=%3d  native=%d implementable=%d rewrite=%d",
			fs.Platform, fs.Score, fs.Native, fs.Implementable, fs.Rewrite)
		if len(fs.Gaps) > 0 {
			fmt.Fprintf(stdout, "  gaps: %v", fs.Gaps)
		}
		fmt.Fprintln(stdout)
	}
	fmt.Fprintf(stdout, "  recommendation: %s\n", best.Platform)
	return nil
}
