// Command gateway demonstrates the confidentiality middleware pipeline
// end to end: a workload generator drives signed client submissions over
// the transport substrate into a Gateway running the full chain
// (authn -> encrypt -> audit -> ratelimit -> retry -> breaker -> batch),
// which orders them and commits every block to all three platform
// backends. It prints per-stage counters, per-backend commits, and the
// leakage matrix showing that neither the gateway operator nor the
// envelope-visibility orderer saw transaction data.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/contract"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/platform/corda"
	"dltprivacy/internal/platform/fabric"
	"dltprivacy/internal/platform/quorum"
	"dltprivacy/internal/transport"
	"dltprivacy/internal/workload"
)

func main() {
	trades := flag.Int("trades", 24, "number of workload trades to submit")
	batch := flag.Int("batch", 4, "batch stage group size")
	seed := flag.Int64("seed", 42, "workload generator seed")
	flag.Parse()
	if err := run(*trades, *batch, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "gateway:", err)
		os.Exit(1)
	}
}

func run(nTrades, batchSize int, seed int64) error {
	wl := workload.New(seed)
	members := wl.Orgs(3)
	trades, err := wl.Trades(members, nTrades, 96)
	if err != nil {
		return err
	}

	// Consortium PKI: every member enrols with the CA.
	ca, err := pki.NewCA("consortium-ca")
	if err != nil {
		return err
	}
	keys := make(map[string]*dcrypto.PrivateKey, len(members))
	certs := make(map[string]pki.Certificate, len(members))
	memberKeys := make(map[string]dcrypto.PublicKey, len(members))
	for _, m := range members {
		key, err := dcrypto.GenerateKey()
		if err != nil {
			return err
		}
		cert, err := ca.Enroll(m, key.Public())
		if err != nil {
			return err
		}
		keys[m], certs[m], memberKeys[m] = key, cert, key.Public()
	}

	// Ordering tier: envelope visibility only — the operator sees
	// ciphertext metadata, never payloads.
	log := audit.NewLog()
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope, ordering.WithAuditLog(log))

	backends, err := standUpPlatforms(members)
	if err != nil {
		return err
	}

	// The declarative pipeline. Swapping confidentiality posture means
	// editing this list, not client code. The session stage serves
	// token-bound traffic from its cached verified principals; authn
	// remains for certificate-bearing (sessionless) submissions. Rate
	// limiting sits before the envelope stage so over-limit traffic is
	// shed before paying the symmetric seal, and the encrypt key cache
	// amortizes the per-member hybrid wrap across each epoch.
	cfg := middleware.Config{Stages: []middleware.StageConfig{
		{Name: middleware.StageSession, Params: map[string]string{"ttl": "10m", "idle": "2m"}},
		{Name: middleware.StageAuthn},
		{Name: middleware.StageRateLimit, Params: map[string]string{"rate": "5000", "burst": "5000"}},
		{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "5m"}},
		{Name: middleware.StageAudit, Params: map[string]string{"observer": "gateway-op"}},
		{Name: middleware.StageRetry, Params: map[string]string{"attempts": "3", "backoff": "2ms"}},
		{Name: middleware.StageBreaker, Params: map[string]string{"threshold": "5", "cooldown": "250ms"}},
		{Name: middleware.StageBatch, Params: map[string]string{"size": fmt.Sprint(batchSize)}},
	}}
	env := middleware.Env{
		CAKey:     ca.PublicKey(),
		Directory: middleware.StaticDirectory{"deals": memberKeys},
		Log:       log,
	}
	gw, err := middleware.NewGateway("gw", cfg, env, orderer)
	if err != nil {
		return err
	}
	gw.Bind("deals", backends...)

	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		return err
	}

	// Each member opens one session: the full certificate verification is
	// paid here, once, and every subsequent submission rides the token.
	tokens := make(map[string]string, len(members))
	for _, m := range members {
		grant, err := middleware.OpenSessionOver(net, m, "gateway", certs[m], keys[m])
		if err != nil {
			return fmt.Errorf("open session for %s: %w", m, err)
		}
		tokens[m] = grant.Token
	}

	start := time.Now()
	for _, tr := range trades {
		payload, err := json.Marshal(tr)
		if err != nil {
			return err
		}
		req := &middleware.Request{
			Channel:      "deals",
			Principal:    tr.Buyer,
			Payload:      payload,
			SessionToken: tokens[tr.Buyer],
		}
		if err := middleware.SignRequest(req, keys[tr.Buyer]); err != nil {
			return err
		}
		if _, err := middleware.SubmitOver(net, tr.Buyer, "gateway", req); err != nil {
			return fmt.Errorf("submit %s: %w", tr.ID, err)
		}
	}
	if err := gw.Flush(context.Background()); err != nil {
		return err
	}
	elapsed := time.Since(start)

	stats := gw.Stats()
	fmt.Printf("submitted %d trades in %v (%.0f tx/s)\n\n",
		stats.Submitted, elapsed.Round(time.Microsecond),
		float64(stats.Submitted)/elapsed.Seconds())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "STAGE\tCALLS\tERRORS\tTIME")
	for _, st := range stats.Stages {
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\n", st.Name, st.Calls, st.Errors, time.Duration(st.Nanos).Round(time.Microsecond))
	}
	fmt.Fprintln(w, "\nBACKEND\tBLOCKS\tTXS\tERRORS")
	for _, bs := range stats.Backends {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\n", bs.Name, bs.Blocks, bs.Txs, bs.Errors)
	}
	w.Flush()

	fmt.Println("\nleakage (who saw transaction data?):")
	for _, op := range []string{"gateway-op", "orderer-op", members[0]} {
		saw := log.SawAny(op, audit.ClassTxData)
		fmt.Printf("  %-12s txdata=%v\n", op, saw)
	}
	// A rejected submission: tampered payload fails the per-request
	// signature check even on a live session.
	bad := &middleware.Request{
		Channel:      "deals",
		Principal:    members[0],
		Payload:      []byte("legit"),
		SessionToken: tokens[members[0]],
	}
	if err := middleware.SignRequest(bad, keys[members[0]]); err != nil {
		return err
	}
	bad.Payload = []byte("tampered")
	if _, err := middleware.SubmitOver(net, members[0], "gateway", bad); !errors.Is(err, middleware.ErrBadSignature) {
		return fmt.Errorf("tampered submission was not rejected: %v", err)
	}
	fmt.Println("\ntampered submission rejected on the session path, as configured")

	// A forged token never reaches the chain's downstream stages.
	forged := &middleware.Request{
		Channel:      "deals",
		Principal:    members[0],
		Payload:      []byte("legit"),
		SessionToken: "not-a-token",
	}
	if err := middleware.SignRequest(forged, keys[members[0]]); err != nil {
		return err
	}
	if _, err := middleware.SubmitOver(net, members[0], "gateway", forged); !errors.Is(err, middleware.ErrNoSession) {
		return fmt.Errorf("forged session token was not rejected: %v", err)
	}
	fmt.Println("forged session token rejected with ErrNoSession")

	// Sessions closed; their tokens die with them.
	for _, m := range members {
		if err := middleware.CloseSessionOver(net, m, "gateway", tokens[m]); err != nil {
			return err
		}
	}
	fmt.Printf("closed %d sessions (%d live)\n", len(members), gw.Sessions().Len())
	return nil
}

// standUpPlatforms boots the three platform models and returns the
// gateway adapters committing into them.
func standUpPlatforms(members []string) ([]middleware.Backend, error) {
	fnet, err := fabric.NewNetwork(fabric.Config{})
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		if _, err := fnet.AddOrg(m); err != nil {
			return nil, err
		}
	}
	policy := contract.Policy{Members: members, Threshold: 2}
	if err := fnet.CreateChannel("deals", members, policy); err != nil {
		return nil, err
	}
	kv := contract.Contract{
		Name:    "kv",
		Version: "1",
		Funcs: map[string]contract.Func{
			"put": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				if len(args) != 2 {
					return nil, errors.New("put: want key, value")
				}
				ctx.Put(string(args[0]), args[1])
				return []byte("ok"), nil
			},
		},
	}
	if err := fnet.InstallChaincode("deals", kv, members); err != nil {
		return nil, err
	}
	fb, err := middleware.NewFabricBackend(fnet, members[0], "kv", "put", members[:2])
	if err != nil {
		return nil, err
	}

	cnet, err := corda.NewNetwork(corda.Config{})
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		if _, err := cnet.AddParty(m); err != nil {
			return nil, err
		}
	}
	cb, err := middleware.NewCordaBackend(cnet, members[0], members[0], members)
	if err != nil {
		return nil, err
	}

	qnet := quorum.NewNetwork()
	for _, m := range members {
		if _, err := qnet.AddNode(m); err != nil {
			return nil, err
		}
	}
	qb, err := middleware.NewQuorumBackend(qnet, members[0], members[1:])
	if err != nil {
		return nil, err
	}
	return []middleware.Backend{fb, cb, qb}, nil
}
