// Command gateway demonstrates the confidentiality middleware pipeline
// end to end: a workload generator drives signed client submissions over
// the transport substrate into a Gateway running the full chain
// (session -> authn -> ratelimit -> encrypt -> audit -> retry -> breaker
// -> batch), which orders them across a sharded ordering tier and commits
// every block to all three platform backends. Channels are partitioned
// over the ordering shards by consistent hashing, with the first channel
// pinned to shard 0 to show the hot-channel pin table. The CA's
// revocation plane is wired through (-revokecheck): revoking a member's
// certificate mid-run evicts its live session and rotates the channel
// data-key epoch so the revoked member cannot open later envelopes.
//
// The demo is its own telemetry consumer: it serves /metrics, /statusz,
// /tracez, and /debug/pprof on the -telemetry listen address, then reads
// the per-stage, per-backend, per-shard, session, and revocation counters
// back through a single /statusz fetch, scrapes its own /metrics for the
// confmw_* families, and summarizes the sampled traces from /tracez
// (-trace N samples one submission in N). It finishes with the leakage
// matrix showing that neither the gateway operator nor any
// envelope-visibility shard operator saw transaction data.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/contract"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/platform/corda"
	"dltprivacy/internal/platform/fabric"
	"dltprivacy/internal/platform/quorum"
	"dltprivacy/internal/telemetry"
	"dltprivacy/internal/transport"
	"dltprivacy/internal/workload"
)

func main() {
	trades := flag.Int("trades", 24, "number of workload trades to submit")
	batch := flag.Int("batch", 4, "batch stage group size")
	groupSeal := flag.Bool("groupseal", false, "seal each (channel, epoch) batch group with one AEAD invocation (amortized group envelope; rides the encrypt key cache)")
	auditAsync := flag.Int("auditasync", 0, "audit ring depth: record leakage-log entries off the submit path, flushed on close (0 = record inline)")
	timingSample := flag.Int("timingsample", 0, "run full per-stage timing for one submission in N, counters stay exact (0 = time every submission)")
	seed := flag.Int64("seed", 42, "workload generator seed")
	shards := flag.Int("shards", 2, "ordering shards behind the gateway")
	replicas := flag.Int("replicas", 0, "ordering operators per shard: 0 runs solo shards, >= 3 runs replicated clusters with automatic leader failover")
	channels := flag.Int("channels", 2, "channels to spread trades across")
	revokeCheck := flag.String("revokecheck", "resolve", "session revocation check mode: off, resolve, or sweep")
	reqauth := flag.String("reqauth", "mac", "steady-state session request auth: sig (per-request ECDSA) or mac (per-session HMAC)")
	codec := flag.String("codec", "binary", "gateway wire codec: json or binary")
	telemetryAddr := flag.String("telemetry", "127.0.0.1:0", "telemetry listen address for /metrics, /statusz, /tracez, /debug/pprof (e.g. :9090)")
	trace := flag.Int("trace", 64, "sample one submission in N for request tracing (0 = off)")
	stages := flag.String("stages", "", `pipeline override as a raw Config string, e.g. "session(reqauth=mac)|authn|encrypt|audit|batch(size=4)"; must include a session stage for the demo workload (empty = the built-in pipeline)`)
	listen := flag.String("listen", "", "serve the wire protocol on this TCP address (e.g. :9444) instead of running the demo; remote clients enroll, open sessions, and submit over the netedge framing")
	acceptLoops := flag.Int("acceptloops", 4, "edge accept-plane shards (serve mode)")
	maxPerPrincipal := flag.Int("maxperprincipal", 0, "live-session cap per principal in serve mode (0 = unlimited)")
	shed := flag.Bool("shed", false, "shed slow edge consumers instead of blocking on their outbound queue (serve mode)")
	statsEvery := flag.Duration("statsevery", 10*time.Second, "serve-mode interval for the edge stats line")
	flag.Parse()
	if *listen != "" {
		if err := runServe(serveOpts{
			listen: *listen, codec: *codec, reqauth: *reqauth, revokeCheck: *revokeCheck,
			telemetryAddr: *telemetryAddr, trace: *trace, shards: *shards, replicas: *replicas,
			channels:    *channels,
			acceptLoops: *acceptLoops, maxPerPrincipal: *maxPerPrincipal, shed: *shed,
			statsEvery: *statsEvery,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "gateway:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*trades, *batch, *seed, *shards, *replicas, *channels, *revokeCheck, *reqauth, *codec, *telemetryAddr, *trace, *stages, *groupSeal, *auditAsync, *timingSample); err != nil {
		fmt.Fprintln(os.Stderr, "gateway:", err)
		if errors.Is(err, middleware.ErrBadConfig) {
			fmt.Fprintf(os.Stderr, "registered stages:\n%s", middleware.StageUsage())
		}
		os.Exit(1)
	}
}

func run(nTrades, batchSize int, seed int64, nShards, replicas, nChannels int, revokeCheck, reqauth, codec, telemetryAddr string, trace int, stagesOverride string, groupSeal bool, auditAsync, timingSample int) error {
	if nShards < 1 || nChannels < 1 {
		return fmt.Errorf("need at least 1 shard and 1 channel, got %d/%d", nShards, nChannels)
	}
	wl := workload.New(seed)
	members := wl.Orgs(3)
	trades, err := wl.Trades(members, nTrades, 96)
	if err != nil {
		return err
	}
	channels := make([]string, nChannels)
	for i := range channels {
		channels[i] = fmt.Sprintf("deals-%d", i)
	}

	// Consortium PKI: every member enrols with the CA.
	ca, err := pki.NewCA("consortium-ca")
	if err != nil {
		return err
	}
	keys := make(map[string]*dcrypto.PrivateKey, len(members))
	certs := make(map[string]pki.Certificate, len(members))
	memberKeys := make(map[string]dcrypto.PublicKey, len(members))
	for _, m := range members {
		key, err := dcrypto.GenerateKey()
		if err != nil {
			return err
		}
		cert, err := ca.Enroll(m, key.Public())
		if err != nil {
			return err
		}
		keys[m], certs[m], memberKeys[m] = key, cert, key.Public()
	}

	// Sharded ordering tier: each shard is its own envelope-visibility
	// service — solo under -replicas 0, a replicated cluster with automatic
	// leader failover under -replicas >= 3 — whose operators are the set the
	// audit log accounts leakage for. Channels spread over shards by
	// consistent hashing; the pin below overrides it for the first channel.
	log := audit.NewLog()
	shardBackends, err := buildShards(nShards, replicas, log)
	if err != nil {
		return err
	}
	orderer, err := ordering.NewSharded(shardBackends)
	if err != nil {
		return err
	}

	backends, err := standUpPlatforms(members, channels)
	if err != nil {
		return err
	}

	// The declarative pipeline. Swapping confidentiality posture means
	// editing this list, not client code. The session stage serves
	// token-bound traffic from its cached verified principals (capped at 4
	// live sessions per principal); authn remains for certificate-bearing
	// (sessionless) submissions. Rate limiting sits before the envelope
	// stage so over-limit traffic is shed before paying the symmetric
	// seal, and the encrypt key cache amortizes the per-member hybrid wrap
	// across each epoch. Shards/ShardPins declare the ordering topology,
	// checked against the backend at construction.
	sessionParams := map[string]string{
		"ttl": "10m", "idle": "2m", "maxperprincipal": "4",
		"revokecheck": revokeCheck,
		"reqauth":     reqauth,
	}
	if revokeCheck == "sweep" {
		sessionParams["revokesweep"] = "30s"
	}
	auditParams := map[string]string{"observer": "gateway-op"}
	if auditAsync > 0 {
		auditParams["auditasync"] = fmt.Sprint(auditAsync)
	}
	batchParams := map[string]string{"size": fmt.Sprint(batchSize)}
	if groupSeal {
		batchParams["groupseal"] = "on"
	}
	cfg := middleware.Config{
		Stages: []middleware.StageConfig{
			{Name: middleware.StageSession, Params: sessionParams},
			{Name: middleware.StageAuthn},
			{Name: middleware.StageRateLimit, Params: map[string]string{"rate": "5000", "burst": "5000"}},
			{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "5m"}},
			{Name: middleware.StageAudit, Params: auditParams},
			{Name: middleware.StageRetry, Params: map[string]string{"attempts": "3", "backoff": "2ms"}},
			{Name: middleware.StageBreaker, Params: map[string]string{"threshold": "5", "cooldown": "250ms"}},
			{Name: middleware.StageBatch, Params: batchParams},
		},
		Shards:    nShards,
		ShardPins: map[string]int{channels[0]: 0},
		Codec:     codec,
	}
	if trace > 0 {
		cfg.Trace = fmt.Sprint(trace)
	}
	if timingSample > 0 {
		cfg.TimingSample = fmt.Sprint(timingSample)
	}
	// -stages overrides the whole pipeline; the demo's request-auth and
	// revocation knobs then follow the override's session stage instead of
	// their own flags. Unknown stage names fail here with the registered
	// list, so new stages are discoverable from the CLI.
	if stagesOverride != "" {
		parsed, err := middleware.ParseStages(stagesOverride)
		if err != nil {
			return err
		}
		cfg.Stages = parsed
		reqauth, revokeCheck = "sig", "off"
		hasSession := false
		for _, sc := range parsed {
			if sc.Name == middleware.StageSession {
				hasSession = true
				if v := sc.Params["reqauth"]; v != "" {
					reqauth = v
				}
				if v := sc.Params["revokecheck"]; v != "" {
					revokeCheck = v
				}
			}
		}
		if !hasSession {
			return fmt.Errorf("%w: the demo workload drives session-bound submissions; include a session stage in -stages", middleware.ErrBadConfig)
		}
	}
	dir := middleware.StaticDirectory{}
	for _, ch := range channels {
		dir[ch] = memberKeys
	}
	env := middleware.Env{
		CAKey:     ca.PublicKey(),
		Directory: dir,
		Log:       log,
		Revoker:   ca, // the CA pushes revocations straight into the gateway
	}
	gw, err := middleware.NewGateway("gw", cfg, env, orderer)
	if err != nil {
		return err
	}
	for _, ch := range channels {
		gw.Bind(ch, backends...)
	}

	bus := transport.New()
	if err := gw.AttachTransport(context.Background(), bus, "gateway"); err != nil {
		return err
	}

	// Telemetry plane: one registry over every layer — stage latency
	// histograms, gateway/session/shard/revocation counters — served next
	// to the stats snapshot, the trace ring, and pprof. The demo below is
	// its own first consumer: stats come back through /statusz, not
	// gw.Stats().
	reg := telemetry.NewRegistry()
	if err := gw.RegisterMetrics(reg); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", telemetryAddr)
	if err != nil {
		return fmt.Errorf("telemetry listen %s: %w", telemetryAddr, err)
	}
	srv := &http.Server{Handler: telemetry.NewMux(reg, gw.Tracer(), func() any { return gw.Stats() })}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("telemetry: %s/metrics /statusz /tracez /debug/pprof (trace=%d)\n\n", base, trace)

	// Each member opens one session: the full certificate verification is
	// paid here, once, and every subsequent submission rides the token.
	// Under -reqauth mac the grant also carries the per-session HMAC key
	// (the symmetric fast path), and under -codec binary the grant
	// negotiates the binary wire framing.
	grants := make(map[string]middleware.SessionGrant, len(members))
	for _, m := range members {
		grant, err := middleware.OpenSessionOverCodec(bus, m, "gateway", certs[m], keys[m], codec)
		if err != nil {
			return fmt.Errorf("open session for %s: %w", m, err)
		}
		grants[m] = grant
	}
	// authenticate binds a request to its session per the configured mode:
	// a ~1µs HMAC under the grant key, or a per-request ECDSA signature.
	authenticate := func(req *middleware.Request) error {
		if reqauth == "mac" {
			middleware.MACRequest(req, grants[req.Principal].MacKey)
			return nil
		}
		return middleware.SignRequest(req, keys[req.Principal])
	}

	start := time.Now()
	for i, tr := range trades {
		payload, err := json.Marshal(tr)
		if err != nil {
			return err
		}
		req := &middleware.Request{
			Channel:      channels[i%len(channels)],
			Principal:    tr.Buyer,
			Payload:      payload,
			SessionToken: grants[tr.Buyer].Token,
		}
		if err := authenticate(req); err != nil {
			return err
		}
		if _, err := middleware.SubmitOverCodec(bus, tr.Buyer, "gateway", req, grants[tr.Buyer].Codec); err != nil {
			return fmt.Errorf("submit %s: %w", tr.ID, err)
		}
	}
	if err := gw.Flush(context.Background()); err != nil {
		return err
	}
	elapsed := time.Since(start)

	// The single stats consumer: the snapshot every counter below prints
	// from is fetched over HTTP from /statusz, exactly as an operator's
	// dashboard would read it.
	stats, err := fetchStatusz(base)
	if err != nil {
		return err
	}
	fmt.Printf("submitted %d trades over %d channels in %v (%.0f tx/s)\n\n",
		stats.Submitted, len(channels), elapsed.Round(time.Microsecond),
		float64(stats.Submitted)/elapsed.Seconds())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "STAGE\tCALLS\tERRORS\tTIME\tEXCL")
	for _, st := range stats.Stages {
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\t%v\n", st.Name, st.Calls, st.Errors,
			time.Duration(st.Nanos).Round(time.Microsecond),
			time.Duration(st.ExclusiveNanos).Round(time.Microsecond))
	}
	fmt.Fprintln(w, "\nBACKEND\tBLOCKS\tTXS\tERRORS")
	for _, bs := range stats.Backends {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\n", bs.Name, bs.Blocks, bs.Txs, bs.Errors)
	}
	fmt.Fprintln(w, "\nSHARD\tOPERATORS\tROUTED\tDELIVERED\tPINNED\tFAILOVERS\tMIGRATED")
	for _, sh := range stats.Shards {
		fmt.Fprintf(w, "%d\t%v\t%d\t%d\t%d\t%d\t%d\n", sh.Shard, sh.Operators, sh.RoutedTxs, sh.DeliveredBlocks,
			sh.PinnedChannels, sh.Failovers, sh.MigratedIn)
	}
	w.Flush()
	if stats.Sessions != nil {
		fmt.Printf("\nsessions: %d live, %d opened, %d expired, %d evicted, %d revoked; key epochs rotated: %d (%d by revocation); revocation sweeps: %d\n",
			stats.Sessions.Live, stats.Sessions.Opened, stats.Sessions.Expired,
			stats.Sessions.Evicted, stats.Sessions.Revoked,
			stats.KeyEpochsRotated, stats.KeyEpochsRevokedRotations, stats.RevocationSweeps)
	}

	// Self-scrape: the same counters in Prometheus text format, ready for
	// any scraper pointed at the -telemetry address.
	if err := printScrape(base, trace); err != nil {
		return err
	}

	// Fault tolerance, live: kill the leader of the first channel's shard
	// and migrate the channel to another shard, with client traffic riding
	// through both.
	if replicas >= 3 {
		if err := demoFailover(gw, orderer, bus, channels, members, grants, authenticate, nShards); err != nil {
			return err
		}
	}

	fmt.Println("\nleakage (who saw transaction data?):")
	ops := []string{"gateway-op"}
	ops = append(ops, shardOperatorNames(nShards, replicas)...)
	ops = append(ops, members[0])
	for _, op := range ops {
		saw := log.SawAny(op, audit.ClassTxData)
		fmt.Printf("  %-14s txdata=%v\n", op, saw)
	}
	// A rejected submission: tampered payload fails the per-request
	// authentication check — MAC or signature — even on a live session.
	bad := &middleware.Request{
		Channel:      channels[0],
		Principal:    members[0],
		Payload:      []byte("legit"),
		SessionToken: grants[members[0]].Token,
	}
	if err := authenticate(bad); err != nil {
		return err
	}
	bad.Payload = []byte("tampered")
	if _, err := middleware.SubmitOver(bus, members[0], "gateway", bad); !errors.Is(err, middleware.ErrBadSignature) && !errors.Is(err, middleware.ErrBadMAC) {
		return fmt.Errorf("tampered submission was not rejected: %v", err)
	}
	fmt.Printf("\ntampered submission rejected on the session path (reqauth=%s), as configured\n", reqauth)

	// A forged token never reaches the chain's downstream stages.
	forged := &middleware.Request{
		Channel:      channels[0],
		Principal:    members[0],
		Payload:      []byte("legit"),
		SessionToken: "not-a-token",
	}
	if err := middleware.SignRequest(forged, keys[members[0]]); err != nil {
		return err
	}
	if _, err := middleware.SubmitOver(bus, members[0], "gateway", forged); !errors.Is(err, middleware.ErrNoSession) {
		return fmt.Errorf("forged session token was not rejected: %v", err)
	}
	fmt.Println("forged session token rejected with ErrNoSession")

	// Mid-run revocation: the CA withdraws the last member's certificate.
	// The push subscription evicts its live session, and the encrypt stage
	// drops it from every channel's next key epoch.
	if revokeCheck != "off" {
		revoked := members[len(members)-1]
		pre, err := fetchStatusz(base)
		if err != nil {
			return err
		}
		ca.Revoke(certs[revoked].Serial)
		late := &middleware.Request{
			Channel:      channels[0],
			Principal:    revoked,
			Payload:      []byte("post-revocation"),
			SessionToken: grants[revoked].Token,
		}
		// Even a valid MAC under the granted session key is refused: the
		// key died with the session when the certificate was revoked.
		if err := authenticate(late); err != nil {
			return err
		}
		if _, err := middleware.SubmitOver(bus, revoked, "gateway", late); !errors.Is(err, middleware.ErrSessionRevoked) {
			return fmt.Errorf("revoked member's submission was not rejected: %v", err)
		}
		fmt.Printf("revoked %s mid-run: session evicted, next submission rejected with ErrSessionRevoked\n", revoked)
		// A surviving member's next submission re-keys the channel: the
		// fresh epoch is not wrapped to the revoked member.
		fresh := &middleware.Request{
			Channel:      channels[0],
			Principal:    members[0],
			Payload:      []byte("post-revocation re-key"),
			SessionToken: grants[members[0]].Token,
		}
		if err := authenticate(fresh); err != nil {
			return err
		}
		if _, err := middleware.SubmitOver(bus, members[0], "gateway", fresh); err != nil {
			return fmt.Errorf("surviving member submit after revocation: %v", err)
		}
		if err := gw.Flush(context.Background()); err != nil {
			return err
		}
		post, err := fetchStatusz(base)
		if err != nil {
			return err
		}
		fmt.Printf("revocation invalidated %d cached channel keys; %d fresh epoch installed on the resubmitted channel; %d sessions revoked, %d sweeps\n",
			post.KeyEpochsRevokedRotations, post.KeyEpochsRotated-pre.KeyEpochsRotated,
			post.SessionsRevoked, post.RevocationSweeps)
	}

	// Sessions closed; their tokens die with them (closing the revoked
	// member's already-evicted token is an idempotent no-op).
	for _, m := range members {
		if err := middleware.CloseSessionOver(bus, m, "gateway", grants[m].Token); err != nil {
			return err
		}
	}
	fmt.Printf("closed %d sessions (%d live)\n", len(members), gw.Sessions().Len())
	return nil
}

// demoFailover exercises the replicated shard fabric with live client
// traffic: it kills the leader of the first channel's shard (the next
// submission rides the automatic election), then migrates the channel to
// another shard over the shard.rebalance admin topic and submits again.
func demoFailover(gw *middleware.Gateway, orderer *ordering.ShardedBackend, bus *transport.Network,
	channels, members []string, grants map[string]middleware.SessionGrant,
	authenticate func(*middleware.Request) error, nShards int) error {
	ch := channels[0]
	shardIdx := orderer.ShardFor(ch)
	shard, err := orderer.Shard(shardIdx)
	if err != nil {
		return err
	}
	rs, ok := shard.(*ordering.ReplicatedShard)
	if !ok {
		return fmt.Errorf("shard %d is %T, want a replicated shard", shardIdx, shard)
	}
	submit := func(payload string) error {
		req := &middleware.Request{
			Channel:      ch,
			Principal:    members[0],
			Payload:      []byte(payload),
			SessionToken: grants[members[0]].Token,
		}
		if err := authenticate(req); err != nil {
			return err
		}
		if _, err := middleware.SubmitOver(bus, members[0], "gateway", req); err != nil {
			return err
		}
		return gw.Flush(context.Background())
	}
	dead, err := rs.CrashLeader(ch)
	if err != nil {
		return err
	}
	if err := submit("submitted into the failover window"); err != nil {
		return fmt.Errorf("submit across leader kill: %w", err)
	}
	fmt.Printf("\nkilled shard %d leader %s mid-run: the next submission rode the automatic election (shard failovers: %d)\n",
		shardIdx, dead, rs.Failovers())
	if nShards < 2 {
		return nil
	}
	target := (shardIdx + 1) % nShards
	notice, err := middleware.RebalanceOver(bus, "admin", "gateway",
		middleware.RebalanceRequest{Channel: ch, To: target})
	if err != nil {
		return fmt.Errorf("migrate %s to shard %d: %w", ch, target, err)
	}
	if err := submit("submitted after migration"); err != nil {
		return fmt.Errorf("submit after migration: %w", err)
	}
	fmt.Printf("migrated %s to shard %d over %s (%d move); the chain continued there without a gap\n",
		ch, orderer.ShardFor(ch), middleware.TopicShardRebalance, len(notice.Migrations))
	return nil
}

// fetchStatusz reads the gateway stats snapshot back through the telemetry
// listener — the demo consumes its own observability surface instead of
// reaching into the Gateway.
func fetchStatusz(base string) (middleware.GatewayStats, error) {
	var stats middleware.GatewayStats
	resp, err := http.Get(base + "/statusz")
	if err != nil {
		return stats, fmt.Errorf("statusz: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return stats, fmt.Errorf("statusz: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return stats, fmt.Errorf("statusz decode: %w", err)
	}
	return stats, nil
}

// printScrape GETs /metrics and /tracez, prints a sample of the confmw_*
// series (one per family), and summarizes the trace ring.
func printScrape(base string, trace int) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	defer resp.Body.Close()
	families := 0
	var sample []string
	var histSample string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lastFamily := ""
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "confmw_") {
			continue
		}
		if histSample == "" && strings.HasPrefix(line, "confmw_stage_latency_seconds_bucket{") {
			histSample = line
		}
		family := line[:strings.IndexAny(line+"{ ", "{ ")]
		if family != lastFamily {
			families++
			lastFamily = family
			if len(sample) < 6 {
				sample = append(sample, line)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("metrics scrape: %w", err)
	}
	fmt.Printf("\nscraped /metrics: %d confmw_* series families, e.g.\n", families)
	for _, line := range sample {
		fmt.Printf("  %s\n", line)
	}
	if histSample != "" {
		fmt.Printf("  %s\n", histSample)
	}
	if trace > 0 {
		tresp, err := http.Get(base + "/tracez")
		if err != nil {
			return fmt.Errorf("tracez: %w", err)
		}
		defer tresp.Body.Close()
		var ring struct {
			SampleEvery int    `json:"sampleEvery"`
			Sampled     uint64 `json:"sampled"`
			Traces      []struct {
				ID    string `json:"id"`
				Spans []struct {
					Stage string `json:"stage"`
				} `json:"spans"`
			} `json:"traces"`
		}
		if err := json.NewDecoder(tresp.Body).Decode(&ring); err != nil {
			return fmt.Errorf("tracez decode: %w", err)
		}
		fmt.Printf("tracez: %d traces sampled (1 in %d) in the ring\n", ring.Sampled, ring.SampleEvery)
		if len(ring.Traces) > 0 {
			stages := make([]string, len(ring.Traces[0].Spans))
			for i, s := range ring.Traces[0].Spans {
				stages[i] = s.Stage
			}
			fmt.Printf("  trace %s spans: %s\n", ring.Traces[0].ID, strings.Join(stages, " "))
		}
	}
	return nil
}

// buildShards constructs the ordering tier: solo envelope-visibility
// services when replicas is 0, or 3+-operator replicated clusters with
// automatic leader failover. Shard i's operators are "orderer-op-<i>"
// (solo) or "orderer-op-<i>-<r>" (replicated).
func buildShards(nShards, replicas int, log *audit.Log) ([]ordering.Backend, error) {
	if replicas != 0 && replicas < 3 {
		return nil, fmt.Errorf("-replicas must be 0 (solo shards) or >= 3 (a replicated cluster needs a majority quorum), got %d", replicas)
	}
	shards := make([]ordering.Backend, nShards)
	for i := range shards {
		if replicas == 0 {
			shards[i] = ordering.New(fmt.Sprintf("orderer-op-%d", i),
				ordering.VisibilityEnvelope, ordering.WithAuditLog(log))
			continue
		}
		ops := make([]string, replicas)
		for r := range ops {
			ops[r] = fmt.Sprintf("orderer-op-%d-%d", i, r)
		}
		rs, err := ordering.NewReplicatedShard(ops, ordering.VisibilityEnvelope, ordering.WithShardAudit(log))
		if err != nil {
			return nil, err
		}
		shards[i] = rs
	}
	return shards, nil
}

// shardOperatorNames lists every ordering operator the topology runs, for
// the leakage matrix.
func shardOperatorNames(nShards, replicas int) []string {
	var ops []string
	for i := 0; i < nShards; i++ {
		if replicas == 0 {
			ops = append(ops, fmt.Sprintf("orderer-op-%d", i))
			continue
		}
		for r := 0; r < replicas; r++ {
			ops = append(ops, fmt.Sprintf("orderer-op-%d-%d", i, r))
		}
	}
	return ops
}

// standUpPlatforms boots the three platform models — with a Fabric channel
// and chaincode per gateway channel — and returns the gateway adapters
// committing into them.
func standUpPlatforms(members, channels []string) ([]middleware.Backend, error) {
	fnet, err := fabric.NewNetwork(fabric.Config{})
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		if _, err := fnet.AddOrg(m); err != nil {
			return nil, err
		}
	}
	policy := contract.Policy{Members: members, Threshold: 2}
	kv := contract.Contract{
		Name:    "kv",
		Version: "1",
		Funcs: map[string]contract.Func{
			"put": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				if len(args) != 2 {
					return nil, errors.New("put: want key, value")
				}
				ctx.Put(string(args[0]), args[1])
				return []byte("ok"), nil
			},
		},
	}
	for _, ch := range channels {
		if err := fnet.CreateChannel(ch, members, policy); err != nil {
			return nil, err
		}
		if err := fnet.InstallChaincode(ch, kv, members); err != nil {
			return nil, err
		}
	}
	fb, err := middleware.NewFabricBackend(fnet, members[0], "kv", "put", members[:2])
	if err != nil {
		return nil, err
	}

	cnet, err := corda.NewNetwork(corda.Config{})
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		if _, err := cnet.AddParty(m); err != nil {
			return nil, err
		}
	}
	cb, err := middleware.NewCordaBackend(cnet, members[0], members[0], members)
	if err != nil {
		return nil, err
	}

	qnet := quorum.NewNetwork()
	for _, m := range members {
		if _, err := qnet.AddNode(m); err != nil {
			return nil, err
		}
	}
	qb, err := middleware.NewQuorumBackend(qnet, members[0], members[1:])
	if err != nil {
		return nil, err
	}
	return []middleware.Backend{fb, cb, qb}, nil
}
