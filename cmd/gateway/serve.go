package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/netedge"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/telemetry"
)

// serveOpts are the knobs of -listen serve mode.
type serveOpts struct {
	listen          string
	codec           string
	reqauth         string
	revokeCheck     string
	telemetryAddr   string
	trace           int
	shards          int
	replicas        int
	channels        int
	acceptLoops     int
	maxPerPrincipal int
	shed            bool
	statsEvery      time.Duration
}

// runServe is -listen mode: instead of driving the in-process demo, the
// command becomes a long-running gateway process serving the wire protocol
// on a real TCP edge — enrollment, session handshakes, and codec v2
// submissions from remote processes (cmd/loadgen is the intended peer) —
// until SIGINT/SIGTERM. The ordering tier runs envelope-visibility shards
// whose blocks are consumed and counted; platform backends stay out of the
// path so the edge, chain, and orderer set the ceiling.
func runServe(o serveOpts) error {
	if o.shards < 1 || o.channels < 1 {
		return fmt.Errorf("need at least 1 shard and 1 channel, got %d/%d", o.shards, o.channels)
	}
	channels := make([]string, o.channels)
	for i := range channels {
		channels[i] = fmt.Sprintf("deals-%d", i)
	}

	// The CA is the trust root remote principals enroll against over the
	// wire (netedge.TopicEnroll); the dynamic directory admits each one to
	// every channel as it enrolls.
	ca, err := pki.NewCA("edge-ca")
	if err != nil {
		return err
	}
	dir := middleware.NewSyncDirectory()

	log := audit.NewLog()
	shardBackends, err := buildShards(o.shards, o.replicas, log)
	if err != nil {
		return err
	}
	orderer, err := ordering.NewSharded(shardBackends)
	if err != nil {
		return err
	}
	// Replicated shards get a health probe on the stats tick: leaderless
	// clusters (a leader died with no submit traffic to trip failover)
	// recover on the probe interval instead of on the next submission.
	var probe func() int
	if o.replicas >= 3 {
		replicated := make([]*ordering.ReplicatedShard, len(shardBackends))
		for i, b := range shardBackends {
			replicated[i] = b.(*ordering.ReplicatedShard)
		}
		probe = func() int {
			n := 0
			for _, rs := range replicated {
				n += rs.ProbeHealth()
			}
			return n
		}
	}
	var ordered atomic.Uint64
	for _, ch := range channels {
		orderer.Subscribe(ch, func(b ledger.Block) error {
			ordered.Add(uint64(len(b.Txs)))
			return nil
		})
	}

	sessionParams := map[string]string{
		"ttl": "10m", "idle": "5m",
		"revokecheck": o.revokeCheck,
		"reqauth":     o.reqauth,
	}
	if o.maxPerPrincipal > 0 {
		sessionParams["maxperprincipal"] = fmt.Sprint(o.maxPerPrincipal)
	}
	if o.revokeCheck == "sweep" {
		sessionParams["revokesweep"] = "30s"
	}
	cfg := middleware.Config{
		Stages: []middleware.StageConfig{
			{Name: middleware.StageSession, Params: sessionParams},
			{Name: middleware.StageAuthn},
			{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "5m"}},
			{Name: middleware.StageAudit, Params: map[string]string{"observer": "gateway-op"}},
		},
		Shards: o.shards,
		Codec:  o.codec,
	}
	if o.trace > 0 {
		cfg.Trace = fmt.Sprint(o.trace)
	}
	env := middleware.Env{
		CAKey:     ca.PublicKey(),
		Directory: dir,
		Log:       log,
		Revoker:   ca,
	}
	gw, err := middleware.NewGateway("gw", cfg, env, orderer)
	if err != nil {
		return err
	}

	handler := netedge.EnrollmentHandler(ca, func(identity string, pub dcrypto.PublicKey) {
		for _, ch := range channels {
			dir.AddMember(ch, identity, pub)
		}
	}, gw)
	edgeOpts := []netedge.Option{
		netedge.WithAcceptLoops(o.acceptLoops),
		netedge.WithConnCloseHook(func(transportID string) {
			gw.Sessions().EvictTransport(transportID)
		}),
	}
	if o.shed {
		edgeOpts = append(edgeOpts, netedge.WithShedding())
	}
	edge, err := netedge.Listen(o.listen, handler, edgeOpts...)
	if err != nil {
		return err
	}
	defer edge.Close()

	reg := telemetry.NewRegistry()
	if err := gw.RegisterMetrics(reg); err != nil {
		return err
	}
	if err := edge.RegisterMetrics(reg); err != nil {
		return err
	}
	tln, err := net.Listen("tcp", o.telemetryAddr)
	if err != nil {
		return fmt.Errorf("telemetry listen %s: %w", o.telemetryAddr, err)
	}
	hsrv := &http.Server{Handler: telemetry.NewMux(reg, gw.Tracer(), func() any { return gw.Stats() })}
	go func() { _ = hsrv.Serve(tln) }()
	defer hsrv.Close()

	fmt.Printf("edge: listening on %s (codec=%s reqauth=%s revokecheck=%s shards=%d replicas=%d channels=%d acceptloops=%d shed=%v)\n",
		edge.Addr(), o.codec, o.reqauth, o.revokeCheck, o.shards, o.replicas, o.channels, o.acceptLoops, o.shed)
	fmt.Printf("telemetry: http://%s/metrics /statusz /tracez /debug/pprof\n", tln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(o.statsEvery)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			if probe != nil {
				if n := probe(); n > 0 {
					fmt.Printf("edge: health probe recovered %d leaderless shard cluster(s)\n", n)
				}
			}
			st := edge.Stats()
			fmt.Printf("edge: conns=%d (accepted %d) requests=%d ordered=%d sessions=%d frame_errs=%d sheds=%d in=%dMB out=%dMB\n",
				st.Live, st.Accepted, st.Requests, ordered.Load(), gw.Sessions().Len(),
				st.FrameErrors, st.Sheds, st.BytesIn>>20, st.BytesOut>>20)
		case <-ctx.Done():
			st := edge.Stats()
			fmt.Printf("edge: shutting down; served %d requests over %d connections, %d tx ordered\n",
				st.Requests, st.Accepted, ordered.Load())
			return nil
		}
	}
}
