// Command loadgen drives a remote gateway process (cmd/gateway -listen)
// over the TCP edge at scale: it enrolls a set of principals, opens a
// large session population — hundreds of thousands of sessions multiplexed
// over a small connection pool, the shape a real edge sees behind load
// balancers — and then holds a steady state of MAC-authenticated binary
// codec v2 submissions across every session, reporting session-open
// throughput, steady-state transactions/sec, and latency quantiles.
//
// The phases:
//
//  1. Enroll -principals keypairs with the gateway CA (netedge pki.enroll).
//  2. Open -sessions sessions, partitioned over -conns connections
//     (sessions are bound to their connection by the gateway, so each
//     session's steady-state traffic stays on its home connection).
//  3. For -duration, submit continuously: each worker cycles through its
//     connection's sessions, submitting each session's pre-encoded
//     MAC'd binary frame and recording end-to-end latency.
//
// Workload payloads come from internal/workload, so runs are seeded and
// reproducible. Any protocol error fails the run: exit status 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/netedge"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/telemetry"
	"dltprivacy/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "gateway edge address (required), e.g. 127.0.0.1:9444")
	sessions := flag.Int("sessions", 100000, "sessions to open")
	conns := flag.Int("conns", 256, "TCP connections to multiplex sessions over")
	principals := flag.Int("principals", 1000, "distinct principals to enroll (sessions round-robin over them)")
	perConn := flag.Int("perconn", 4, "concurrent workers per connection")
	duration := flag.Duration("duration", 10*time.Second, "steady-state submission phase length (0 skips it)")
	payload := flag.Int("payload", 96, "trade payload bytes")
	channels := flag.Int("channels", 1, "gateway channels to spread submissions over (must be <= the gateway's -channels)")
	seed := flag.Int64("seed", 42, "workload generator seed")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -addr is required")
		os.Exit(2)
	}
	if err := run(*addr, *sessions, *conns, *principals, *perConn, *payload, *channels, *seed, *duration); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// session is one open session pinned to its home connection.
type session struct {
	conn *netedge.Client
	wire []byte // pre-encoded MAC'd binary submission
}

func run(addr string, nSessions, nConns, nPrincipals, perConn, payloadBytes, nChannels int, seed int64, duration time.Duration) error {
	if nConns < 1 || nSessions < 1 || nPrincipals < 1 || perConn < 1 || nChannels < 1 {
		return fmt.Errorf("all of -sessions, -conns, -principals, -perconn, -channels must be positive")
	}
	if nConns > nSessions {
		nConns = nSessions
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Connection pool. The in-flight window is sized to the worker count so
	// the client window never sheds under its own drivers.
	pool := make([]*netedge.Client, nConns)
	for i := range pool {
		c, err := netedge.Dial(addr, netedge.WithInFlight(perConn*2))
		if err != nil {
			return fmt.Errorf("dial %d: %w", i, err)
		}
		defer c.Close()
		pool[i] = c
	}
	fmt.Printf("loadgen: %d connections to %s\n", nConns, addr)

	// Phase 1: principals. Keys are generated locally; certificates come
	// from the gateway CA over the wire.
	wl := workload.New(seed)
	names := wl.Orgs(nPrincipals)
	keys := make([]*dcrypto.PrivateKey, nPrincipals)
	certs := make([]pki.Certificate, nPrincipals)
	start := time.Now()
	if err := eachIndex(ctx, nPrincipals, perConn*nConns, func(ctx context.Context, i int) error {
		key, err := dcrypto.GenerateKey()
		if err != nil {
			return err
		}
		cert, err := pool[i%nConns].Enroll(ctx, names[i], key.Public())
		if err != nil {
			return fmt.Errorf("enroll %s: %w", names[i], err)
		}
		keys[i], certs[i] = key, cert
		return nil
	}); err != nil {
		return err
	}
	fmt.Printf("loadgen: enrolled %d principals in %v\n", nPrincipals, time.Since(start).Round(time.Millisecond))

	// Phase 2: the session population. Session i lives on connection
	// i%nConns and belongs to principal i%nPrincipals; each open pays the
	// full signed handshake (ECDSA sign client-side, verify server-side).
	nTrades := 256
	if nSessions < nTrades {
		nTrades = nSessions
	}
	trades, err := wl.Trades(names, nTrades, payloadBytes)
	if err != nil {
		return err
	}
	sessions := make([]session, nSessions)
	start = time.Now()
	if err := eachIndex(ctx, nSessions, perConn*nConns, func(ctx context.Context, i int) error {
		p := i % nPrincipals
		conn := pool[i%nConns]
		grant, err := conn.OpenSession(ctx, names[p], certs[p], keys[p], middleware.CodecBinary)
		if err != nil {
			return fmt.Errorf("open session %d (%s): %w", i, names[p], err)
		}
		if grant.Codec != middleware.CodecBinary {
			return fmt.Errorf("session %d: gateway did not grant binary codec (got %q)", i, grant.Codec)
		}
		req := &middleware.Request{
			Channel:      fmt.Sprintf("deals-%d", i%nChannels),
			Principal:    names[p],
			Payload:      trades[i%len(trades)].Payload,
			SessionToken: grant.Token,
		}
		middleware.MACRequest(req, grant.MacKey)
		wire, err := middleware.EncodeWireRequest(req, middleware.CodecBinary)
		if err != nil {
			return err
		}
		sessions[i] = session{conn: conn, wire: wire}
		return nil
	}); err != nil {
		return err
	}
	openElapsed := time.Since(start)
	fmt.Printf("loadgen: opened %d sessions in %v (%.0f sessions/sec)\n",
		nSessions, openElapsed.Round(time.Millisecond), float64(nSessions)/openElapsed.Seconds())

	if duration <= 0 {
		return ctx.Err()
	}

	// Phase 3: steady state. Workers are pinned to a connection and cycle
	// through its sessions, so every submission rides its session's bound
	// connection. Latency lands in an exponential-bucket histogram; the
	// quantiles below are derived from it.
	hist := telemetry.NewHistogram("loadgen_submit_latency_seconds",
		"End-to-end submission latency.", telemetry.LatencyBounds, 1e-9)
	var submitted, failed atomic.Uint64
	steadyCtx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()
	start = time.Now()
	var wg sync.WaitGroup
	for c := 0; c < nConns; c++ {
		for w := 0; w < perConn; w++ {
			wg.Add(1)
			go func(c, w int) {
				defer wg.Done()
				// This worker's session slice: the c-th connection owns
				// sessions c, c+nConns, c+2*nConns, ...; workers interleave.
				for i := c + w*nConns; steadyCtx.Err() == nil; i += perConn * nConns {
					s := sessions[i%nSessions]
					t0 := time.Now()
					_, err := s.conn.SubmitRaw(steadyCtx, s.wire)
					if err != nil {
						if steadyCtx.Err() != nil {
							return
						}
						failed.Add(1)
						continue
					}
					hist.Observe(uint64(time.Since(t0)))
					submitted.Add(1)
				}
			}(c, w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed > duration {
		elapsed = duration
	}

	snap := hist.Snapshot()
	n, f := submitted.Load(), failed.Load()
	fmt.Printf("loadgen: steady state: %d tx in %v (%.0f tx/sec), p50=%v p99=%v, %d failed\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(),
		time.Duration(snap.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(snap.Quantile(0.99)).Round(time.Microsecond), f)
	if f > 0 {
		return fmt.Errorf("%d of %d submissions failed", f, n+f)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	fmt.Println("loadgen: ok")
	return nil
}

// eachIndex runs fn for every index in [0, n) across `workers` goroutines,
// stopping the whole fleet at the first error or context cancellation.
func eachIndex(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					errc <- ctx.Err()
					return
				}
				if err := fn(ctx, i); err != nil {
					cancel()
					errc <- err
					return
				}
			}
		}()
	}
	var first error
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}
