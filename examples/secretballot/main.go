// Secret ballot: the paper's motivating example for multiparty computation
// (§2.2 / Figure 1 "Collective computation?"). Five consortium members vote
// on admitting a new member; nobody learns anyone else's vote, every member
// computes the same tally — and the tally is committed to the governance
// channel through the middleware gateway over a persistent session, so the
// ballot result itself stays sealed from the gateway and orderer operators
// instead of being hand-appended to a shared ledger in plaintext.
//
// The run also demonstrates the revocation plane mid-ballot: after the
// preliminary tally is committed, one member's certificate is revoked. Its
// live session is evicted (the late submission fails with
// ErrSessionRevoked), and the ratified tally is sealed under a fresh key
// epoch the revoked member cannot open — trust withdrawal reaches both the
// session cache and the channel keys, not just new handshakes.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/mpc"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/transport"
)

// vault collects committed envelopes so members can open them.
type vault struct{ payloads [][]byte }

func (v *vault) Name() string { return "vault" }

func (v *vault) Commit(b ledger.Block) error {
	for _, tx := range b.Txs {
		v.payloads = append(v.payloads, tx.Payload)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "secretballot:", err)
		os.Exit(1)
	}
}

func run() error {
	votes := map[string]bool{
		"BankA":     true,
		"BankB":     false,
		"SellerCo":  true,
		"BuyerInc":  true,
		"Logistics": false,
	}
	yes, res, err := mpc.SecretBallot(votes)
	if err != nil {
		return err
	}
	fmt.Printf("ballot closed: %d yes of %d votes\n", yes, len(votes))

	// Privacy evidence: the transcript contains only uniformly random
	// shares and aggregated partial sums.
	shares, partials := 0, 0
	for _, m := range res.Transcript {
		switch m.Kind {
		case mpc.KindShare:
			shares++
		case mpc.KindPartialSum:
			partials++
		}
	}
	fmt.Printf("transcript: %d share messages, %d partial-sum messages, 0 raw votes\n",
		shares, partials)

	// Every member computed the same value.
	for member, v := range res.PerParty {
		if v.Cmp(res.Value) != 0 {
			return fmt.Errorf("member %s diverged: %v", member, v)
		}
	}

	// Commit the tally through the gateway: members enroll once, BankA
	// opens a session, and the tally travels sealed to all five members.
	ca, err := pki.NewCA("consortium-ca")
	if err != nil {
		return err
	}
	members := make([]string, 0, len(votes))
	for m := range votes {
		members = append(members, m)
	}
	keys := make(map[string]*dcrypto.PrivateKey, len(members))
	certs := make(map[string]pki.Certificate, len(members))
	memberKeys := make(map[string]dcrypto.PublicKey, len(members))
	for _, m := range members {
		key, err := dcrypto.GenerateKey()
		if err != nil {
			return err
		}
		cert, err := ca.Enroll(m, key.Public())
		if err != nil {
			return err
		}
		keys[m], certs[m], memberKeys[m] = key, cert, key.Public()
	}

	log := audit.NewLog()
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope, ordering.WithAuditLog(log))
	cfg := middleware.Config{Stages: []middleware.StageConfig{
		{Name: middleware.StageSession, Params: map[string]string{"ttl": "10m", "idle": "2m", "revokecheck": "resolve"}},
		{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "5m"}},
		{Name: middleware.StageAudit, Params: map[string]string{"observer": "gateway-op"}},
	}}
	env := middleware.Env{
		CAKey:     ca.PublicKey(),
		Directory: middleware.StaticDirectory{"governance": memberKeys},
		Log:       log,
		Revoker:   ca, // revocations push straight into sessions and key epochs
	}
	gw, err := middleware.NewGateway("gov-gw", cfg, env, orderer)
	if err != nil {
		return err
	}
	v := &vault{}
	gw.Bind("governance", v)
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		return err
	}

	grant, err := middleware.OpenSessionOver(net, "BankA", "gateway", certs["BankA"], keys["BankA"])
	if err != nil {
		return err
	}
	// Logistics keeps its own session open too — the one the revocation
	// below must kill.
	logGrant, err := middleware.OpenSessionOver(net, "Logistics", "gateway", certs["Logistics"], keys["Logistics"])
	if err != nil {
		return err
	}
	submit := func(who, payload, token string) error {
		req := &middleware.Request{
			Channel:      "governance",
			Principal:    who,
			Payload:      []byte(payload),
			SessionToken: token,
		}
		if err := middleware.SignRequest(req, keys[who]); err != nil {
			return err
		}
		_, err := middleware.SubmitOver(net, who, "gateway", req)
		return err
	}
	preliminary := "ballot: admit NewMember, yes=" + strconv.Itoa(yes)
	if err := submit("BankA", preliminary, grant.Token); err != nil {
		return err
	}

	// Every member recovers the committed tally from the sealed envelope.
	if len(v.payloads) != 1 {
		return fmt.Errorf("vault holds %d payloads, want 1", len(v.payloads))
	}
	envl, err := middleware.ParseEnvelope(v.payloads[0])
	if err != nil {
		return err
	}
	for _, m := range members {
		plain, err := middleware.OpenEnvelope(envl, m, keys[m])
		if err != nil {
			return fmt.Errorf("member %s cannot open the tally: %w", m, err)
		}
		if string(plain) != preliminary {
			return fmt.Errorf("member %s read %q", m, plain)
		}
	}
	fmt.Printf("committed tally via gateway session: all %d members read %d yes votes\n",
		len(members), yes)

	// Mid-ballot revocation: Logistics' certificate is withdrawn before
	// ratification. The CA's push reaches the gateway at once — the live
	// session dies, and the governance channel re-keys without Logistics.
	ca.Revoke(certs["Logistics"].Serial)
	if err := submit("Logistics", "late objection", logGrant.Token); !errors.Is(err, middleware.ErrSessionRevoked) {
		return fmt.Errorf("revoked member's late submission = %v, want ErrSessionRevoked", err)
	}
	fmt.Println("mid-ballot revocation: Logistics' session evicted, late submission rejected")

	ratified := "ballot ratified: admit NewMember, yes=" + strconv.Itoa(yes)
	if err := submit("BankA", ratified, grant.Token); err != nil {
		return err
	}
	if len(v.payloads) != 2 {
		return fmt.Errorf("vault holds %d payloads, want 2", len(v.payloads))
	}
	final, err := middleware.ParseEnvelope(v.payloads[1])
	if err != nil {
		return err
	}
	if final.Epoch <= envl.Epoch {
		return fmt.Errorf("ratified tally epoch %d did not advance past %d", final.Epoch, envl.Epoch)
	}
	if _, err := middleware.OpenEnvelope(final, "Logistics", keys["Logistics"]); !errors.Is(err, middleware.ErrNotRecipient) {
		return fmt.Errorf("revoked member opened the ratified tally: %v", err)
	}
	for _, m := range members {
		if m == "Logistics" {
			continue
		}
		plain, err := middleware.OpenEnvelope(final, m, keys[m])
		if err != nil || string(plain) != ratified {
			return fmt.Errorf("member %s read %q, %v", m, plain, err)
		}
	}
	fmt.Printf("ratified tally sealed under epoch %d: %d remaining members can open it, the revoked member cannot\n",
		final.Epoch, len(members)-1)

	if err := middleware.CloseSessionOver(net, "BankA", "gateway", grant.Token); err != nil {
		return err
	}
	// Closing the revoked member's already-evicted session is a no-op.
	if err := middleware.CloseSessionOver(net, "Logistics", "gateway", logGrant.Token); err != nil {
		return err
	}

	// The operators saw ciphertext and metadata, never the tally.
	for _, op := range []string{"gateway-op", "orderer-op"} {
		if log.SawAny(op, audit.ClassTxData) {
			return fmt.Errorf("%s observed the ballot result", op)
		}
	}
	fmt.Println("audit log confirms: the tally stayed sealed from gateway and orderer operators")
	return nil
}
