// Secret ballot: the paper's motivating example for multiparty computation
// (§2.2 / Figure 1 "Collective computation?"). Five consortium members vote
// on admitting a new member; nobody learns anyone else's vote, every member
// computes the same tally, and the tally is committed to a shared ledger.
package main

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"dltprivacy/internal/ledger"
	"dltprivacy/internal/mpc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "secretballot:", err)
		os.Exit(1)
	}
}

func run() error {
	votes := map[string]bool{
		"BankA":     true,
		"BankB":     false,
		"SellerCo":  true,
		"BuyerInc":  true,
		"Logistics": false,
	}
	yes, res, err := mpc.SecretBallot(votes)
	if err != nil {
		return err
	}
	fmt.Printf("ballot closed: %d yes of %d votes\n", yes, len(votes))

	// Privacy evidence: the transcript contains only uniformly random
	// shares and aggregated partial sums.
	shares, partials := 0, 0
	for _, m := range res.Transcript {
		switch m.Kind {
		case mpc.KindShare:
			shares++
		case mpc.KindPartialSum:
			partials++
		}
	}
	fmt.Printf("transcript: %d share messages, %d partial-sum messages, 0 raw votes\n",
		shares, partials)

	// Every member computed the same value; commit it to a ledger.
	for member, v := range res.PerParty {
		if v.Cmp(res.Value) != 0 {
			return fmt.Errorf("member %s diverged: %v", member, v)
		}
	}
	l := ledger.New("governance")
	tx := ledger.Transaction{
		Channel:   "governance",
		Creator:   "BankA",
		Payload:   []byte("ballot: admit NewMember"),
		Writes:    []ledger.Write{{Key: "ballot/admit-newmember", Value: []byte(strconv.Itoa(yes))}},
		Timestamp: time.Now().UTC(),
	}
	if err := l.Append(l.CutBlock([]ledger.Transaction{tx})); err != nil {
		return err
	}
	v, err := l.Get("ballot/admit-newmember")
	if err != nil {
		return err
	}
	fmt.Printf("committed tally on ledger: %s yes votes (block %d)\n", v.Value, v.BlockNum)
	return nil
}
