// Secret ballot: the paper's motivating example for multiparty computation
// (§2.2 / Figure 1 "Collective computation?"). Five consortium members vote
// on admitting a new member; nobody learns anyone else's vote, every member
// computes the same tally — and the tally is committed to the governance
// channel through the middleware gateway over a persistent session, so the
// ballot result itself stays sealed from the gateway and orderer operators
// instead of being hand-appended to a shared ledger in plaintext.
package main

import (
	"context"
	"fmt"
	"os"
	"strconv"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/mpc"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/transport"
)

// vault collects committed envelopes so members can open them.
type vault struct{ payloads [][]byte }

func (v *vault) Name() string { return "vault" }

func (v *vault) Commit(b ledger.Block) error {
	for _, tx := range b.Txs {
		v.payloads = append(v.payloads, tx.Payload)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "secretballot:", err)
		os.Exit(1)
	}
}

func run() error {
	votes := map[string]bool{
		"BankA":     true,
		"BankB":     false,
		"SellerCo":  true,
		"BuyerInc":  true,
		"Logistics": false,
	}
	yes, res, err := mpc.SecretBallot(votes)
	if err != nil {
		return err
	}
	fmt.Printf("ballot closed: %d yes of %d votes\n", yes, len(votes))

	// Privacy evidence: the transcript contains only uniformly random
	// shares and aggregated partial sums.
	shares, partials := 0, 0
	for _, m := range res.Transcript {
		switch m.Kind {
		case mpc.KindShare:
			shares++
		case mpc.KindPartialSum:
			partials++
		}
	}
	fmt.Printf("transcript: %d share messages, %d partial-sum messages, 0 raw votes\n",
		shares, partials)

	// Every member computed the same value.
	for member, v := range res.PerParty {
		if v.Cmp(res.Value) != 0 {
			return fmt.Errorf("member %s diverged: %v", member, v)
		}
	}

	// Commit the tally through the gateway: members enroll once, BankA
	// opens a session, and the tally travels sealed to all five members.
	ca, err := pki.NewCA("consortium-ca")
	if err != nil {
		return err
	}
	members := make([]string, 0, len(votes))
	for m := range votes {
		members = append(members, m)
	}
	keys := make(map[string]*dcrypto.PrivateKey, len(members))
	certs := make(map[string]pki.Certificate, len(members))
	memberKeys := make(map[string]dcrypto.PublicKey, len(members))
	for _, m := range members {
		key, err := dcrypto.GenerateKey()
		if err != nil {
			return err
		}
		cert, err := ca.Enroll(m, key.Public())
		if err != nil {
			return err
		}
		keys[m], certs[m], memberKeys[m] = key, cert, key.Public()
	}

	log := audit.NewLog()
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope, ordering.WithAuditLog(log))
	cfg := middleware.Config{Stages: []middleware.StageConfig{
		{Name: middleware.StageSession, Params: map[string]string{"ttl": "10m", "idle": "2m"}},
		{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "5m"}},
		{Name: middleware.StageAudit, Params: map[string]string{"observer": "gateway-op"}},
	}}
	env := middleware.Env{
		CAKey:     ca.PublicKey(),
		Directory: middleware.StaticDirectory{"governance": memberKeys},
		Log:       log,
	}
	gw, err := middleware.NewGateway("gov-gw", cfg, env, orderer)
	if err != nil {
		return err
	}
	v := &vault{}
	gw.Bind("governance", v)
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		return err
	}

	grant, err := middleware.OpenSessionOver(net, "BankA", "gateway", certs["BankA"], keys["BankA"])
	if err != nil {
		return err
	}
	req := &middleware.Request{
		Channel:      "governance",
		Principal:    "BankA",
		Payload:      []byte("ballot: admit NewMember, yes=" + strconv.Itoa(yes)),
		SessionToken: grant.Token,
	}
	if err := middleware.SignRequest(req, keys["BankA"]); err != nil {
		return err
	}
	if _, err := middleware.SubmitOver(net, "BankA", "gateway", req); err != nil {
		return err
	}
	if err := middleware.CloseSessionOver(net, "BankA", "gateway", grant.Token); err != nil {
		return err
	}

	// Every member recovers the committed tally from the sealed envelope.
	if len(v.payloads) != 1 {
		return fmt.Errorf("vault holds %d payloads, want 1", len(v.payloads))
	}
	envl, err := middleware.ParseEnvelope(v.payloads[0])
	if err != nil {
		return err
	}
	for _, m := range members {
		plain, err := middleware.OpenEnvelope(envl, m, keys[m])
		if err != nil {
			return fmt.Errorf("member %s cannot open the tally: %w", m, err)
		}
		want := "ballot: admit NewMember, yes=" + strconv.Itoa(yes)
		if string(plain) != want {
			return fmt.Errorf("member %s read %q", m, plain)
		}
	}
	fmt.Printf("committed tally via gateway session: all %d members read %d yes votes\n",
		len(members), yes)

	// The operators saw ciphertext and metadata, never the tally.
	for _, op := range []string{"gateway-op", "orderer-op"} {
		if log.SawAny(op, audit.ClassTxData) {
			return fmt.Errorf("%s observed the ballot result", op)
		}
	}
	fmt.Println("audit log confirms: the tally stayed sealed from gateway and orderer operators")
	return nil
}
