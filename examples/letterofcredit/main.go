// Letter of credit (§4 of the paper) via the public API: the design-guide
// engine derives the architecture, the application runs the full lifecycle,
// and a GDPR deletion request is honoured at the end.
package main

import (
	"fmt"
	"math/big"
	"os"

	"dltprivacy/internal/loc"
	"dltprivacy/internal/zkp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "letterofcredit:", err)
		os.Exit(1)
	}
}

func run() error {
	app, err := loc.NewApp(loc.Config{
		Bank:   "FirstTradeBank",
		Buyer:  "OutbackImports",
		Seller: "PacificMills",
	})
	if err != nil {
		return err
	}

	// The buyer proves it can cover the letter without revealing its
	// balance (zero-knowledge sufficient-funds proof, §2.2).
	balance := big.NewInt(5_000_000)
	comm, blinding, err := zkp.CommitValue(balance)
	if err != nil {
		return err
	}
	id, err := app.Apply("2000 bales of wool", 1_200_000,
		[]byte("director passport PA9911223"), balance, comm, blinding)
	if err != nil {
		return err
	}
	fmt.Println("applied:", id)

	for _, step := range []struct {
		name string
		fn   func() error
	}{
		{"issue", func() error { return app.Issue(id) }},
		{"ship", func() error { return app.Ship(id, "BL-2026-0612") }},
		{"present", func() error { return app.Present(id) }},
		{"pay", func() error { return app.Pay(id) }},
	} {
		if err := step.fn(); err != nil {
			return fmt.Errorf("%s: %w", step.name, err)
		}
		fmt.Println("completed:", step.name)
	}

	letter, err := app.Get("PacificMills", id)
	if err != nil {
		return err
	}
	fmt.Printf("final state: %s %s for %d cents (%s)\n",
		letter.ID, letter.Status, letter.AmountCents, letter.Goods)

	// GDPR: the director asks for their passport data to be erased.
	if err := app.DeletePII(id); err != nil {
		return err
	}
	fmt.Println("PII deleted on request; the ledger keeps only the hash anchor")
	return nil
}
