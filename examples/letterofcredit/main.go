// Letter of credit (§4 of the paper) through the gateway: the buyer's
// sufficient-funds proof is no longer hand-verified by application code —
// a zkproof stage in the declarative pipeline checks it before the
// application is sealed for the channel members. One Config string
// expresses the whole confidentiality posture: session-amortized authn,
// range-proof-gated applications, envelope encryption, leakage accounting.
package main

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"os"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/transport"
)

// recorder captures committed transactions so the parties can read the
// sealed applications back off the ledger.
type recorder struct{ txs []ledger.Transaction }

func (r *recorder) Name() string { return "recorder" }

func (r *recorder) Commit(b ledger.Block) error {
	r.txs = append(r.txs, b.Txs...)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "letterofcredit:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Consortium PKI: bank, buyer, and seller enroll once.
	ca, err := pki.NewCA("consortium-ca")
	if err != nil {
		return err
	}
	parties := []string{"FirstTradeBank", "OutbackImports", "PacificMills"}
	keys := make(map[string]*dcrypto.PrivateKey, len(parties))
	certs := make(map[string]pki.Certificate, len(parties))
	for _, p := range parties {
		key, err := dcrypto.GenerateKey()
		if err != nil {
			return err
		}
		cert, err := ca.Enroll(p, key.Public())
		if err != nil {
			return err
		}
		keys[p], certs[p] = key, cert
	}

	// 2. The declarative pipeline. The zkproof stage gates only the
	// application channel: every submission on loc-apply must carry a
	// valid sufficient-funds claim, verified against the submitter before
	// the encrypt stage seals the payload. Lifecycle traffic on loc-trade
	// passes the stage untouched.
	log := audit.NewLog()
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope, ordering.WithAuditLog(log))
	cfg := middleware.Config{
		Stages: []middleware.StageConfig{
			{Name: middleware.StageSession, Params: map[string]string{"ttl": "10m"}},
			{Name: middleware.StageAuthn},
			{Name: middleware.StageZKProof, Params: map[string]string{"mode": "range", "channel": "loc-apply"}},
			{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "5m"}},
			{Name: middleware.StageAudit, Params: map[string]string{"observer": "gateway-op"}},
		},
	}
	members := map[string]dcrypto.PublicKey{
		"FirstTradeBank": keys["FirstTradeBank"].Public(),
		"OutbackImports": keys["OutbackImports"].Public(),
		"PacificMills":   keys["PacificMills"].Public(),
	}
	env := middleware.Env{
		CAKey:     ca.PublicKey(),
		Directory: middleware.StaticDirectory{"loc-apply": members, "loc-trade": members},
		Log:       log,
	}
	gw, err := middleware.NewGateway("gw-loc", cfg, env, orderer)
	if err != nil {
		return err
	}
	rec := &recorder{}
	gw.Bind("loc-apply", rec)
	gw.Bind("loc-trade", rec)
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		return err
	}

	// 3. Every party opens one session; full PKI verification is paid
	// once per party, not once per lifecycle step.
	grants := make(map[string]middleware.SessionGrant, len(parties))
	for _, p := range parties {
		grant, err := middleware.OpenSessionOver(net, p, "gateway", certs[p], keys[p])
		if err != nil {
			return err
		}
		grants[p] = grant
	}

	// 4. The buyer applies for a letter covering 1,200,000 cents. The
	// attached claim proves balance >= amount without revealing the
	// balance; the proof transcript is bound to (channel, principal), so
	// it cannot be replayed by anyone else.
	amount := big.NewInt(1_200_000)
	balance := big.NewInt(5_000_000) // never leaves the buyer's process
	apply := &middleware.Request{
		Channel:      "loc-apply",
		Principal:    "OutbackImports",
		Payload:      []byte("LoC application: 2000 bales of wool for 1200000 cents, beneficiary PacificMills"),
		SessionToken: grants["OutbackImports"].Token,
	}
	if _, err := middleware.AttachSufficientFundsProof(apply, balance, amount); err != nil {
		return err
	}
	if err := middleware.SignRequest(apply, keys["OutbackImports"]); err != nil {
		return err
	}
	if _, err := middleware.SubmitOver(net, "OutbackImports", "gateway", apply); err != nil {
		return err
	}
	fmt.Println("applied: sufficient-funds proof verified by the zkproof stage")

	// An application without a proof never reaches the ledger.
	bare := &middleware.Request{
		Channel:      "loc-apply",
		Principal:    "OutbackImports",
		Payload:      []byte("LoC application with no proof"),
		SessionToken: grants["OutbackImports"].Token,
	}
	if err := middleware.SignRequest(bare, keys["OutbackImports"]); err != nil {
		return err
	}
	if _, err := middleware.SubmitOver(net, "OutbackImports", "gateway", bare); !errors.Is(err, middleware.ErrProofRequired) {
		return fmt.Errorf("proof-less application accepted: %v", err)
	}
	fmt.Println("rejected: application without a funds proof")

	// 5. The lifecycle runs as session submissions on the trade channel.
	for _, step := range []struct{ party, event string }{
		{"FirstTradeBank", "issue"},
		{"PacificMills", "ship BL-2026-0612"},
		{"PacificMills", "present documents"},
		{"FirstTradeBank", "pay 1200000 cents"},
	} {
		req := &middleware.Request{
			Channel:      "loc-trade",
			Principal:    step.party,
			Payload:      []byte("loc-2026-0612: " + step.event),
			SessionToken: grants[step.party].Token,
		}
		if err := middleware.SignRequest(req, keys[step.party]); err != nil {
			return err
		}
		if _, err := middleware.SubmitOver(net, step.party, "gateway", req); err != nil {
			return fmt.Errorf("%s: %w", step.event, err)
		}
		fmt.Println("completed:", step.event)
	}

	// 6. The bank reads the sealed application back. The ledger carries
	// the verification note — commitment hash, not the balance.
	if len(rec.txs) == 0 {
		return errors.New("no transactions committed")
	}
	appTx := rec.txs[0]
	envl, err := middleware.ParseEnvelope(appTx.Payload)
	if err != nil {
		return err
	}
	plain, err := middleware.OpenEnvelope(envl, "FirstTradeBank", keys["FirstTradeBank"])
	if err != nil {
		return err
	}
	fmt.Printf("bank reads the sealed application: %s\n", plain)
	fmt.Printf("ledger records only the proof note: %s\n", appTx.Meta[middleware.MetaZKProof])

	// 7. Leakage accounting: neither operator saw application content,
	// and the buyer's balance existed only inside the buyer's process.
	for _, op := range []string{"gateway-op", "orderer-op"} {
		if log.SawAny(op, audit.ClassTxData) {
			return fmt.Errorf("%s observed transaction data", op)
		}
	}
	fmt.Println("audit log confirms: no operator saw application data, and the balance never left the buyer")
	return nil
}
