// Quickstart: stand up a three-organization Fabric-model network, create a
// private channel between two of them, invoke a contract, and show that the
// third organization can observe nothing — the core separation-of-ledgers
// mechanism from §2.1 of the paper.
package main

import (
	"errors"
	"fmt"
	"os"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/contract"
	"dltprivacy/internal/platform/fabric"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Network with three organizations.
	net, err := fabric.NewNetwork(fabric.Config{})
	if err != nil {
		return err
	}
	for _, org := range []string{"Alpha", "Bravo", "Charlie"} {
		if _, err := net.AddOrg(org); err != nil {
			return err
		}
	}

	// 2. A private channel between Alpha and Bravo.
	policy := contract.Policy{Members: []string{"Alpha", "Bravo"}, Threshold: 2}
	if err := net.CreateChannel("deals", []string{"Alpha", "Bravo"}, policy); err != nil {
		return err
	}

	// 3. A contract installed on the channel members only.
	cc := contract.Contract{
		Name:    "kv",
		Version: "1",
		Funcs: map[string]contract.Func{
			"put": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				if len(args) != 2 {
					return nil, errors.New("put: want key, value")
				}
				ctx.Put(string(args[0]), args[1])
				return []byte("ok"), nil
			},
		},
	}
	if err := net.InstallChaincode("deals", cc, []string{"Alpha", "Bravo"}); err != nil {
		return err
	}

	// 4. A confidential trade.
	txID, err := net.Invoke("deals", "Alpha", "kv", "put",
		[][]byte{[]byte("deal-1"), []byte("10 tons of steel @ 700/t")},
		[]string{"Alpha", "Bravo"})
	if err != nil {
		return err
	}
	fmt.Println("committed transaction", txID)

	// 5. Members share the state…
	v, err := net.Query("deals", "Bravo", "deal-1")
	if err != nil {
		return err
	}
	fmt.Printf("Bravo reads: %s\n", v)

	// …the outsider sees nothing.
	if _, err := net.Query("deals", "Charlie", "deal-1"); err != nil {
		fmt.Println("Charlie cannot read the channel:", err)
	}
	if !net.Log.SawAny("Charlie", audit.ClassTxData) {
		fmt.Println("audit log confirms: Charlie observed no transaction data")
	}
	return nil
}
