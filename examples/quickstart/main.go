// Quickstart: submit a confidential trade through the middleware gateway.
// Three organizations enroll with the consortium CA; Alpha opens one
// persistent gateway session (paying certificate verification once),
// submits trades bound to the session token, and the pipeline seals each
// payload for the channel members before ordering commits it into a
// Fabric-model channel. The ordering tier is sharded: two independent
// envelope-visibility orderers, with the hot "deals" channel pinned to
// shard 1 by the Config pin table while every other channel would route by
// consistent hashing. Bravo — a member — decrypts the committed envelope;
// Charlie, both shard operators, and the gateway operator see nothing: the
// core separation-of-ledgers mechanism from §2.1 of the paper, now behind
// one declarative pipeline instead of hand-wired calls.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/contract"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/platform/fabric"
	"dltprivacy/internal/transport"
)

// txIndex records committed transaction IDs so readers can locate the
// envelopes the Fabric backend stored under them.
type txIndex struct{ ids []string }

func (x *txIndex) Name() string { return "tx-index" }

func (x *txIndex) Commit(b ledger.Block) error {
	for _, tx := range b.Txs {
		x.ids = append(x.ids, tx.ID())
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Consortium PKI: every organization enrolls once.
	ca, err := pki.NewCA("consortium-ca")
	if err != nil {
		return err
	}
	orgs := []string{"Alpha", "Bravo", "Charlie"}
	keys := make(map[string]*dcrypto.PrivateKey, len(orgs))
	certs := make(map[string]pki.Certificate, len(orgs))
	for _, org := range orgs {
		key, err := dcrypto.GenerateKey()
		if err != nil {
			return err
		}
		cert, err := ca.Enroll(org, key.Public())
		if err != nil {
			return err
		}
		keys[org], certs[org] = key, cert
	}

	// 2. A Fabric-model network with a private channel between Alpha and
	// Bravo, fronted by the gateway.
	fnet, err := fabric.NewNetwork(fabric.Config{})
	if err != nil {
		return err
	}
	for _, org := range orgs {
		if _, err := fnet.AddOrg(org); err != nil {
			return err
		}
	}
	channelMembers := []string{"Alpha", "Bravo"}
	policy := contract.Policy{Members: channelMembers, Threshold: 2}
	if err := fnet.CreateChannel("deals", channelMembers, policy); err != nil {
		return err
	}
	kv := contract.Contract{
		Name:    "kv",
		Version: "1",
		Funcs: map[string]contract.Func{
			"put": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				if len(args) != 2 {
					return nil, errors.New("put: want key, value")
				}
				ctx.Put(string(args[0]), args[1])
				return []byte("ok"), nil
			},
		},
	}
	if err := fnet.InstallChaincode("deals", kv, channelMembers); err != nil {
		return err
	}
	fb, err := middleware.NewFabricBackend(fnet, "Alpha", "kv", "put", channelMembers)
	if err != nil {
		return err
	}

	// 3. The declarative pipeline: session-amortized authn, envelope
	// encryption to the channel members (data key cached per epoch),
	// leakage accounting. Envelope visibility keeps payloads opaque to
	// both shard operators; Shards/ShardPins declare the ordering
	// topology, checked against the backend when the gateway is built.
	log := audit.NewLog()
	orderer, err := ordering.NewSharded([]ordering.Backend{
		ordering.New("orderer-op-0", ordering.VisibilityEnvelope, ordering.WithAuditLog(log)),
		ordering.New("orderer-op-1", ordering.VisibilityEnvelope, ordering.WithAuditLog(log)),
	})
	if err != nil {
		return err
	}
	cfg := middleware.Config{
		Stages: []middleware.StageConfig{
			{Name: middleware.StageSession, Params: map[string]string{"ttl": "10m", "idle": "2m"}},
			{Name: middleware.StageAuthn},
			{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "5m"}},
			{Name: middleware.StageAudit, Params: map[string]string{"observer": "gateway-op"}},
		},
		Shards:    2,
		ShardPins: map[string]int{"deals": 1},
	}
	env := middleware.Env{
		CAKey: ca.PublicKey(),
		Directory: middleware.StaticDirectory{"deals": {
			"Alpha": keys["Alpha"].Public(),
			"Bravo": keys["Bravo"].Public(),
		}},
		Log: log,
	}
	gw, err := middleware.NewGateway("gw", cfg, env, orderer)
	if err != nil {
		return err
	}
	index := &txIndex{}
	gw.Bind("deals", fb, index)
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		return err
	}

	// 4. Alpha opens one session — full PKI verification happens here,
	// once — then submits confidential trades bound to the token.
	grant, err := middleware.OpenSessionOver(net, "Alpha", "gateway", certs["Alpha"], keys["Alpha"])
	if err != nil {
		return err
	}
	fmt.Println("Alpha opened a gateway session (cert verified once)")
	for _, deal := range []string{
		"deal-1: 10 tons of steel @ 700/t",
		"deal-2: 4 tons of copper @ 9100/t",
	} {
		req := &middleware.Request{
			Channel:      "deals",
			Principal:    "Alpha",
			Payload:      []byte(deal),
			SessionToken: grant.Token,
		}
		if err := middleware.SignRequest(req, keys["Alpha"]); err != nil {
			return err
		}
		if _, err := middleware.SubmitOver(net, "Alpha", "gateway", req); err != nil {
			return err
		}
	}
	fmt.Println("submitted 2 trades on the session token (no certs on the wire)")
	for _, sh := range gw.Stats().Shards {
		if sh.RoutedTxs > 0 {
			fmt.Printf("shard %d (%s) ordered %d txs (pinned channels: %d)\n",
				sh.Shard, sh.Operators[0], sh.RoutedTxs, sh.PinnedChannels)
		}
	}

	// 5. Bravo, a channel member, reads and decrypts the committed state…
	for _, txID := range index.ids {
		committed, err := fnet.Query("deals", "Bravo", txID)
		if err != nil {
			return err
		}
		envl, err := middleware.ParseEnvelope(committed)
		if err != nil {
			return err
		}
		plain, err := middleware.OpenEnvelope(envl, "Bravo", keys["Bravo"])
		if err != nil {
			return err
		}
		fmt.Printf("Bravo reads (epoch %d): %s\n", envl.Epoch, plain)

		// …the outsider cannot: Charlie holds no wrapped key.
		if _, err := middleware.OpenEnvelope(envl, "Charlie", keys["Charlie"]); !errors.Is(err, middleware.ErrNotRecipient) {
			return fmt.Errorf("Charlie opened a channel envelope: %v", err)
		}
	}
	fmt.Println("Charlie cannot open the envelopes: not a channel member")

	// 6. Leakage accounting: no operator — gateway or either ordering
	// shard — saw transaction data.
	for _, op := range []string{"gateway-op", "orderer-op-0", "orderer-op-1"} {
		if log.SawAny(op, audit.ClassTxData) {
			return fmt.Errorf("%s observed transaction data", op)
		}
	}
	fmt.Println("audit log confirms: neither the gateway nor any shard operator saw trade data")

	// 7. Session hygiene: closed tokens are dead.
	if err := middleware.CloseSessionOver(net, "Alpha", "gateway", grant.Token); err != nil {
		return err
	}
	stale := &middleware.Request{
		Channel: "deals", Principal: "Alpha", Payload: []byte("late"), SessionToken: grant.Token,
	}
	if err := middleware.SignRequest(stale, keys["Alpha"]); err != nil {
		return err
	}
	if _, err := middleware.SubmitOver(net, "Alpha", "gateway", stale); !errors.Is(err, middleware.ErrNoSession) {
		return fmt.Errorf("closed session token accepted: %v", err)
	}
	fmt.Println("closed session rejected with ErrNoSession")
	return nil
}
