// Confidential oracle through the gateway: two banks settle an FX deal
// whose conversion is computed inside a TEE (§3.3 of the paper). Instead
// of hand-verifying enclave quotes, the pipeline's attest stage enforces
// the policy: only payloads produced by the audited rate program, running
// in a manufacturer-endorsed enclave, reach the ledger — and the encrypt
// stage then seals them so the operators never see the amounts.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
	"dltprivacy/internal/tee"
	"dltprivacy/internal/transport"
)

// recorder captures committed transactions for the read-back step.
type recorder struct{ txs []ledger.Transaction }

func (r *recorder) Name() string { return "recorder" }

func (r *recorder) Commit(b ledger.Block) error {
	r.txs = append(r.txs, b.Txs...)
	return nil
}

// rateProgram is the audited FX conversion logic: "USD=<cents>" in,
// settlement statement out, at a pinned rate. Its measurement is what the
// gateway's attestation policy trusts.
var rateProgram = tee.Program{
	Name:    "fx-rate",
	Version: "1.52",
	Run: func(input, state []byte) ([]byte, []byte, error) {
		usdStr, ok := strings.CutPrefix(string(input), "USD=")
		if !ok {
			return nil, state, errors.New("want USD=<cents>")
		}
		usd, err := strconv.ParseInt(usdStr, 10, 64)
		if err != nil {
			return nil, state, err
		}
		aud := usd * 152 / 100
		out := fmt.Sprintf("settle: %d USD cents -> %d AUD cents @ USD/AUD=1.52", usd, aud)
		return []byte(out), state, nil
	},
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "confidentialoracle:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. PKI for the two banks; a TEE manufacturer provisions the enclave
	// that will run the rate program.
	ca, err := pki.NewCA("consortium-ca")
	if err != nil {
		return err
	}
	banks := []string{"BankA", "BankB"}
	keys := make(map[string]*dcrypto.PrivateKey, len(banks))
	certs := make(map[string]pki.Certificate, len(banks))
	for _, b := range banks {
		key, err := dcrypto.GenerateKey()
		if err != nil {
			return err
		}
		cert, err := ca.Enroll(b, key.Public())
		if err != nil {
			return err
		}
		keys[b], certs[b] = key, cert
	}
	man, err := tee.NewManufacturer()
	if err != nil {
		return err
	}
	enclave, err := man.Provision()
	if err != nil {
		return err
	}
	if err := enclave.Load(rateProgram); err != nil {
		return err
	}

	// 2. The pipeline: the attest stage pins the manufacturer key and the
	// rate program's measurement, with output binding — the submitted
	// payload must be exactly what the enclave produced.
	log := audit.NewLog()
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope, ordering.WithAuditLog(log))
	measurement := rateProgram.Measurement()
	cfg := middleware.Config{
		Stages: []middleware.StageConfig{
			{Name: middleware.StageSession, Params: map[string]string{"ttl": "10m"}},
			{Name: middleware.StageAuthn},
			{Name: middleware.StageAttest, Params: map[string]string{"mode": "tee", "bind": "output"}},
			{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "5m"}},
			{Name: middleware.StageAudit, Params: map[string]string{"observer": "gateway-op"}},
		},
	}
	env := middleware.Env{
		CAKey: ca.PublicKey(),
		Directory: middleware.StaticDirectory{"fx-settle": {
			"BankA": keys["BankA"].Public(),
			"BankB": keys["BankB"].Public(),
		}},
		Log:         log,
		Attestation: &middleware.AttestationPolicy{Manufacturer: man.PublicKey(), Measurement: measurement},
	}
	gw, err := middleware.NewGateway("gw-fx", cfg, env, orderer)
	if err != nil {
		return err
	}
	rec := &recorder{}
	gw.Bind("fx-settle", rec)
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		return err
	}

	// 3. BankA runs the conversion in the enclave and submits the output
	// with its attestation over a gateway session.
	grant, err := middleware.OpenSessionOver(net, "BankA", "gateway", certs["BankA"], keys["BankA"])
	if err != nil {
		return err
	}
	output, att, err := enclave.Execute([]byte("USD=100000000"))
	if err != nil {
		return err
	}
	req := &middleware.Request{
		Channel:      "fx-settle",
		Principal:    "BankA",
		Payload:      output,
		SessionToken: grant.Token,
	}
	if err := middleware.AttachAttestation(req, att); err != nil {
		return err
	}
	if err := middleware.SignRequest(req, keys["BankA"]); err != nil {
		return err
	}
	if _, err := middleware.SubmitOver(net, "BankA", "gateway", req); err != nil {
		return err
	}
	fmt.Println("settlement accepted: attestation verified by the attest stage")

	// 4. A payload the enclave did not produce is rejected, even with a
	// genuine attestation attached: output binding ties quote to bytes.
	forged := &middleware.Request{
		Channel:      "fx-settle",
		Principal:    "BankA",
		Payload:      []byte("settle: 100000000 USD cents -> 1 AUD cent @ USD/AUD=0"),
		SessionToken: grant.Token,
	}
	if err := middleware.AttachAttestation(forged, att); err != nil {
		return err
	}
	if err := middleware.SignRequest(forged, keys["BankA"]); err != nil {
		return err
	}
	if _, err := middleware.SubmitOver(net, "BankA", "gateway", forged); !errors.Is(err, middleware.ErrAttestationRejected) {
		return fmt.Errorf("tampered settlement accepted: %v", err)
	}
	fmt.Println("rejected: payload differs from the attested enclave output")

	// 5. A different program — same manufacturer, wrong measurement — is
	// rejected too: the policy trusts the audited rate logic, not the TEE
	// vendor alone.
	rogue, err := man.Provision()
	if err != nil {
		return err
	}
	if err := rogue.Load(tee.Program{
		Name:    "fx-rate-rigged",
		Version: "1.0",
		Run: func(input, state []byte) ([]byte, []byte, error) {
			return []byte("settle: whatever BankA wants"), state, nil
		},
	}); err != nil {
		return err
	}
	rogueOut, rogueAtt, err := rogue.Execute([]byte("USD=100000000"))
	if err != nil {
		return err
	}
	rigged := &middleware.Request{
		Channel:      "fx-settle",
		Principal:    "BankA",
		Payload:      rogueOut,
		SessionToken: grant.Token,
	}
	if err := middleware.AttachAttestation(rigged, rogueAtt); err != nil {
		return err
	}
	if err := middleware.SignRequest(rigged, keys["BankA"]); err != nil {
		return err
	}
	if _, err := middleware.SubmitOver(net, "BankA", "gateway", rigged); !errors.Is(err, middleware.ErrAttestationRejected) {
		return fmt.Errorf("unaudited program output accepted: %v", err)
	}
	fmt.Println("rejected: enclave running an unaudited program (measurement mismatch)")

	// 6. BankB reads the sealed settlement; the ledger carries only the
	// compact attestation note.
	if len(rec.txs) != 1 {
		return fmt.Errorf("want 1 committed settlement, got %d", len(rec.txs))
	}
	tx := rec.txs[0]
	envl, err := middleware.ParseEnvelope(tx.Payload)
	if err != nil {
		return err
	}
	plain, err := middleware.OpenEnvelope(envl, "BankB", keys["BankB"])
	if err != nil {
		return err
	}
	fmt.Printf("BankB reads the sealed settlement: %s\n", plain)
	fmt.Printf("ledger records only the attestation note: %s\n", tx.Meta[middleware.MetaAttest])

	// 7. Leakage accounting: no operator saw amounts or counterparties.
	for _, op := range []string{"gateway-op", "orderer-op"} {
		if log.SawAny(op, audit.ClassTxData) {
			return fmt.Errorf("%s observed transaction data", op)
		}
	}
	fmt.Println("audit log confirms: amounts stayed hidden from the gateway and ordering operators")
	return nil
}
