// Confidential oracle: the Corda-model Merkle tear-off scenario from §5 of
// the paper. Two banks settle an FX deal that needs an oracle to attest to
// the exchange rate — but they do not want the oracle to see amounts or
// counterparties. The oracle receives a tear-off exposing only the rate
// component, recomputes the Merkle root, and signs.
package main

import (
	"errors"
	"fmt"
	"os"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/platform/corda"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "confidentialoracle:", err)
		os.Exit(1)
	}
}

func run() error {
	net, err := corda.NewNetwork(corda.Config{})
	if err != nil {
		return err
	}
	for _, p := range []string{"BankA", "BankB"} {
		if _, err := net.AddParty(p); err != nil {
			return err
		}
	}
	if err := net.AddOracle("fx-oracle"); err != nil {
		return err
	}

	// The FX transaction: amounts and parties are confidential; only the
	// rate needs third-party attestation.
	tx := &corda.Transaction{
		Outputs: []corda.State{{
			Data:         []byte("BankA pays BankB 1,000,000 USD against 1,520,000 AUD"),
			OwnerAddr:    "one-time-addr",
			Participants: []string{"BankA", "BankB"},
		}},
		Commands: []string{"fx-rate:USD/AUD=1.52"},
	}
	id, err := tx.ID()
	if err != nil {
		return err
	}
	fmt.Println("built transaction", id)

	// Tear off everything except the rate command.
	tearOff, err := tx.CommandTearOff(0)
	if err != nil {
		return err
	}
	att, err := net.OracleSign("fx-oracle", tearOff, func(visible []byte) error {
		if string(visible) != "fx-rate:USD/AUD=1.52" {
			return errors.New("rate not recognized")
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Println("oracle attested to the rate via tear-off")

	// The participants verify the attestation against the full tx.
	if err := net.VerifyOracleAttestation(att, tx); err != nil {
		return err
	}
	fmt.Println("attestation verifies against the full transaction")

	// Leakage check: the oracle saw the rate component and nothing else.
	seen := net.Log.ItemsSeen("fx-oracle", audit.ClassTxData)
	fmt.Printf("oracle observations: %v\n", seen)
	for _, item := range seen {
		if item != "component:fx-rate:USD/AUD=1.52" {
			return fmt.Errorf("oracle saw more than the rate: %s", item)
		}
	}
	fmt.Println("confirmed: amounts and counterparties stayed hidden from the oracle")
	return nil
}
