// Regulator audit: two privacy extensions composed. (1) Two channels settle
// the same confidential amount; a regulator verifies cross-channel
// consistency through an equality-of-commitments proof without learning the
// amount. (2) A party transacts under Idemix-style pseudonyms that are
// unlinkable across channels yet stable within the regulator's audit scope,
// so the auditor can attribute repeated activity to "the same entity"
// without ever learning who it is.
package main

import (
	"fmt"
	"math/big"
	"os"

	"dltprivacy/internal/anoncred"
	"dltprivacy/internal/zkp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "regulatoraudit:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Part 1: cross-channel amount consistency in zero knowledge ---
	amount := big.NewInt(250_000) // confidential settlement amount
	// Channel A and channel B each publish a commitment to the amount.
	commA, rA, err := zkp.CommitValue(amount)
	if err != nil {
		return err
	}
	commB, rB, err := zkp.CommitValue(amount)
	if err != nil {
		return err
	}
	proof, err := zkp.ProveEqualCommitments(rA, rB, commA, commB, []byte("settlement-2026-06-12"))
	if err != nil {
		return err
	}
	if err := zkp.VerifyEqualCommitments(proof, commA, commB, []byte("settlement-2026-06-12")); err != nil {
		return fmt.Errorf("regulator consistency check: %w", err)
	}
	fmt.Println("regulator verified: both channels settled the SAME amount")
	fmt.Println("regulator learned the amount: no (commitments are hiding)")

	// --- Part 2: auditable anonymity with scope-exclusive pseudonyms ---
	issuer := anoncred.NewIssuer("consortium-ca")
	attrs := []string{"role=member"}
	key, err := issuer.RegisterAttributeSet(attrs)
	if err != nil {
		return err
	}
	wallet, err := anoncred.NewWallet()
	if err != nil {
		return err
	}
	if err := wallet.RequestTokens(issuer, attrs, 4); err != nil {
		return err
	}

	// Two presentations in the regulator's audit scope: same pseudonym.
	p1, err := wallet.Present(attrs, "audit-2026")
	if err != nil {
		return err
	}
	p2, err := wallet.Present(attrs, "audit-2026")
	if err != nil {
		return err
	}
	for i, p := range []anoncred.Presentation{p1, p2} {
		if err := anoncred.VerifyPresentation(p, key); err != nil {
			return fmt.Errorf("presentation %d: %w", i+1, err)
		}
	}
	if p1.NymString() != p2.NymString() {
		return fmt.Errorf("audit-scope pseudonyms diverged")
	}
	fmt.Printf("auditor links repeated activity to pseudonym %s…\n", p1.NymString()[:12])

	// A presentation on a trading channel: different, unlinkable pseudonym.
	p3, err := wallet.Present(attrs, "channel-trades")
	if err != nil {
		return err
	}
	if err := anoncred.VerifyPresentation(p3, key); err != nil {
		return err
	}
	if p3.NymString() == p1.NymString() {
		return fmt.Errorf("cross-scope pseudonyms must differ")
	}
	fmt.Println("…but cannot link it to the trading-channel pseudonym", p3.NymString()[:12])
	fmt.Println("auditable anonymity: accountability inside the audit scope, unlinkability outside")
	return nil
}
