// Regulator audit through the gateway: member banks report confidential
// exposures under anonymous credentials, and the pipeline aggregates the
// encrypted reports homomorphically before anything reaches the ledger.
// The anoncred stage replaces certificate authn — the gateway learns
// "a credentialed member" plus a scope-exclusive pseudonym, never which
// bank — and the terminal aggregate stage orders only the Paillier sum,
// so the regulator decrypts the sector total without seeing any single
// exposure. Auditable anonymity (§2.3): pseudonyms are stable inside the
// audit scope for accountability, unlinkable outside it.
package main

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"os"

	"dltprivacy/internal/anoncred"
	"dltprivacy/internal/audit"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/paillier"
	"dltprivacy/internal/transport"
)

// recorder captures the released aggregate transaction.
type recorder struct{ txs []ledger.Transaction }

func (r *recorder) Name() string { return "recorder" }

func (r *recorder) Commit(b ledger.Block) error {
	r.txs = append(r.txs, b.Txs...)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "regulatoraudit:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. The consortium issuer registers the membership attribute set;
	// each bank's wallet draws one-show tokens. The regulator generates
	// the Paillier collection key — only the regulator can decrypt, and
	// only the aggregate ever reaches it.
	attrs := []string{"role=member"}
	issuer := anoncred.NewIssuer("consortium-ca")
	credKey, err := issuer.RegisterAttributeSet(attrs)
	if err != nil {
		return err
	}
	wallets := make(map[string]*anoncred.Wallet, 2)
	for _, bank := range []string{"AlphaBank", "BetaBank"} {
		w, err := anoncred.NewWallet()
		if err != nil {
			return err
		}
		if err := w.RequestTokens(issuer, attrs, 4); err != nil {
			return err
		}
		wallets[bank] = w
	}
	regulatorKey, err := paillier.GenerateKey(512)
	if err != nil {
		return err
	}
	collectKey := &regulatorKey.PublicKey

	// 2. The pipeline, declaratively: anoncred authenticates in place of
	// certificates, and aggregate terminates the chain — individual
	// reports are acknowledged, held, and combined; only the encrypted
	// sum is ordered.
	log := audit.NewLog()
	orderer := ordering.New("orderer-op", ordering.VisibilityEnvelope, ordering.WithAuditLog(log))
	cfg := middleware.Config{
		Stages: []middleware.StageConfig{
			{Name: middleware.StageAnonCred, Params: map[string]string{
				"mode": "present", "attrs": "role=member", "scope": "audit-2026",
			}},
			{Name: middleware.StageAudit, Params: map[string]string{"observer": "regulator-op"}},
			{Name: middleware.StageAggregate, Params: map[string]string{"mode": "paillier", "size": "3"}},
		},
	}
	env := middleware.Env{AnonCredKey: credKey, Aggregator: collectKey, Log: log}
	gw, err := middleware.NewGateway("gw-audit", cfg, env, orderer)
	if err != nil {
		return err
	}
	rec := &recorder{}
	gw.Bind("exposure-reports", rec)
	net := transport.New()
	if err := gw.AttachTransport(context.Background(), net, "gateway"); err != nil {
		return err
	}

	// 3. Three reports: AlphaBank files twice (a correction cycle),
	// BetaBank once. Each report is the exposure encrypted to the
	// regulator, presented under a fresh one-show token.
	reports := []struct {
		bank     string
		exposure int64
	}{
		{"AlphaBank", 250_000},
		{"BetaBank", 410_000},
		{"AlphaBank", 90_000},
	}
	nyms := make([]string, 0, len(reports))
	var replay *middleware.Request
	for i, rep := range reports {
		payload, err := middleware.EncodeAggregand(collectKey, big.NewInt(rep.exposure))
		if err != nil {
			return err
		}
		req := &middleware.Request{Channel: "exposure-reports", Payload: payload}
		nym, err := middleware.AttachPresentation(req, wallets[rep.bank], attrs, "audit-2026")
		if err != nil {
			return err
		}
		nyms = append(nyms, nym)
		if i == 0 {
			// Keep a copy of the first wire presentation for the replay
			// check below.
			replay = &middleware.Request{
				Channel:   req.Channel,
				Principal: req.Principal,
				Payload:   req.Payload,
				Meta:      map[string]string{middleware.MetaAnonCred: req.Meta[middleware.MetaAnonCred]},
			}
		}
		if _, err := middleware.SubmitOver(net, "member", "gateway", req); err != nil {
			return fmt.Errorf("report %d: %w", i+1, err)
		}
		fmt.Printf("report %d accepted under pseudonym %s…\n", i+1, nym[:12])
	}

	// 4. Accountability inside the scope: the regulator can tell the two
	// AlphaBank filings came from the same member — without knowing it is
	// AlphaBank. Unlinkability outside it: the same wallet presenting in
	// another scope yields an unrelated pseudonym.
	if nyms[0] != nyms[2] {
		return errors.New("same-scope pseudonyms diverged")
	}
	if nyms[0] == nyms[1] {
		return errors.New("distinct members share a pseudonym")
	}
	fmt.Println("regulator links reports 1 and 3 to one member — without learning which bank")
	other := &middleware.Request{Channel: "elsewhere"}
	crossNym, err := middleware.AttachPresentation(other, wallets["AlphaBank"], attrs, "channel-trades")
	if err != nil {
		return err
	}
	if crossNym == nyms[0] {
		return errors.New("cross-scope pseudonyms must differ")
	}
	fmt.Println("the same wallet is unlinkable outside the audit scope")

	// 5. One-show enforcement: replaying a spent presentation fails.
	if _, err := middleware.SubmitOver(net, "member", "gateway", replay); !errors.Is(err, middleware.ErrCredentialRejected) {
		return fmt.Errorf("replayed presentation accepted: %v", err)
	}
	fmt.Println("rejected: replayed presentation (one-show token already spent)")

	// A report with no credential at all never enters the pool.
	anon, err := middleware.EncodeAggregand(collectKey, big.NewInt(1))
	if err != nil {
		return err
	}
	if _, err := middleware.SubmitOver(net, "member", "gateway",
		&middleware.Request{Channel: "exposure-reports", Principal: "nobody", Payload: anon},
	); !errors.Is(err, middleware.ErrCredentialRequired) {
		return fmt.Errorf("credential-less report accepted: %v", err)
	}
	fmt.Println("rejected: report without a credential presentation")

	// 6. The third accepted report filled the group: exactly one
	// transaction was ordered, creator "aggregated", no pseudonyms.
	if len(rec.txs) != 1 {
		return fmt.Errorf("want 1 aggregate transaction, got %d", len(rec.txs))
	}
	tx := rec.txs[0]
	if tx.Creator != middleware.AggregatePrincipal {
		return fmt.Errorf("aggregate creator %q", tx.Creator)
	}
	if _, leaked := tx.Meta[middleware.MetaNym]; leaked {
		return errors.New("contributor pseudonym leaked onto the aggregate")
	}
	total, err := middleware.DecryptAggregate(regulatorKey, tx.Payload)
	if err != nil {
		return err
	}
	if total.Int64() != 750_000 {
		return fmt.Errorf("aggregate total %s, want 750000", total)
	}
	fmt.Printf("ledger holds one tx (%s): regulator decrypts the sector total %s\n",
		tx.Meta[middleware.MetaAggregate], total)
	fmt.Println("no individual exposure was ever decryptable: reports were combined in ciphertext")
	return nil
}
