package dltprivacy_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dltprivacy/internal/ledger"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
)

// atomicSink counts committed transactions with atomics: under the sharded
// topology, deliveries for different channels run concurrently.
type atomicSink struct{ txs atomic.Uint64 }

func (s *atomicSink) Name() string { return "atomic-sink" }

func (s *atomicSink) Commit(b ledger.Block) error {
	s.txs.Add(uint64(len(b.Txs)))
	return nil
}

// shardSequencingCost models one ordering node's sequencing throughput
// (consensus round trip / commit fsync per transaction): ~5k tx/s per
// shard, the capacity the sharded topology multiplies.
const shardSequencingCost = 200 * time.Microsecond

// BenchmarkGatewaySharded measures aggregate gateway throughput under
// multi-channel concurrent load as the ordering tier scales from one shard
// to four. Each shard is a solo ordering service with a fixed sequencing
// cost per transaction — the per-node throughput ceiling a real orderer
// has — so a single shard serializes all sixteen channels through one
// sequencer while four shards run four sequencers concurrently. Channels
// are pinned round-robin across shards (exercising the pin table and
// keeping the load balanced), and 16 concurrent submitters drive traffic
// over all channels, so ns/op falls near linearly with the shard count:
// the ≥1.7x aggregate-throughput win at 4 shards is the number the CI
// benchmark gate holds on to. The chain is the permissive-ratelimit
// baseline so middleware crypto does not mask the ordering tier.
func BenchmarkGatewaySharded(b *testing.B) {
	for _, nShards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", nShards), func(b *testing.B) {
			benchGatewaySharded(b, nShards)
		})
	}
}

func benchGatewaySharded(b *testing.B, nShards int) {
	b.Helper()
	const nChannels = 16
	shards := make([]ordering.Backend, nShards)
	for i := range shards {
		shards[i] = ordering.New(fmt.Sprintf("bench-shard-%d", i), ordering.VisibilityEnvelope,
			ordering.WithSequencingCost(shardSequencingCost))
	}
	sb, err := ordering.NewSharded(shards)
	if err != nil {
		b.Fatal(err)
	}
	channels := make([]string, nChannels)
	pins := make(map[string]int, nChannels)
	for i := range channels {
		channels[i] = fmt.Sprintf("bench-ch-%02d", i)
		pins[channels[i]] = i % nShards
	}
	cfg := middleware.Config{
		Stages: []middleware.StageConfig{
			{Name: middleware.StageRateLimit, Params: map[string]string{"rate": "1e12", "burst": "1e12"}},
		},
		Shards:    nShards,
		ShardPins: pins,
	}
	gw, err := middleware.NewGateway("bench-gw", cfg, middleware.Env{}, sb)
	if err != nil {
		b.Fatal(err)
	}
	sink := &atomicSink{}
	templates := make([]middleware.Request, nChannels)
	payload := make([]byte, 2048)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i, ch := range channels {
		gw.Bind(ch, sink)
		templates[i] = middleware.Request{
			Channel:   ch,
			Principal: "load-gen",
			Payload:   payload,
		}
	}

	ctx := context.Background()
	var next atomic.Uint64
	b.ReportAllocs()
	// 16 concurrent submitters per GOMAXPROCS: the multi-channel client
	// population whose aggregate throughput the shard count bounds.
	b.SetParallelism(16)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			req := templates[next.Add(1)%nChannels]
			if err := gw.Submit(ctx, &req); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	if stats := gw.Stats(); stats.Ordered != uint64(b.N) || sink.txs.Load() != uint64(b.N) {
		b.Fatalf("ordered %d, committed %d, want %d", stats.Ordered, sink.txs.Load(), b.N)
	}
}
