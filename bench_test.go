// Package dltprivacy_test is the benchmark harness of experiment E7
// (§3.4 of the paper: performance at scale of confidentiality-preserving
// methods must be assessed per use case) plus the ablation benches listed in
// DESIGN.md §4. Run with:
//
//	go test -bench=. -benchmem
//
// Table/figure mapping:
//
//	BenchmarkTable1Probes        — E1 regeneration cost
//	BenchmarkFigure1Decide       — E2 enumeration cost
//	BenchmarkLoCLifecycle        — E3 end-to-end
//	BenchmarkChannelScaling      — channels vs single ledger (ablation)
//	BenchmarkPrivateData         — PDC vs on-chain symmetric encryption
//	BenchmarkTearOff             — tear-off vs full disclosure to oracles
//	BenchmarkRangeProof          — ZKP boolean affirmation vs raw disclosure
//	BenchmarkMPCSum              — MPC party scaling vs trusted aggregator
//	BenchmarkPaillier            — homomorphic ops vs plaintext (§2.2 claim)
//	BenchmarkTEE                 — enclave execution vs plain execution
//	BenchmarkAnonCred            — Idemix-style presentation/verification
//	BenchmarkOrdering            — ordering throughput vs batch size
//	BenchmarkGatewayChain        — middleware pipeline overhead per stage
//	                               (bench_gateway_test.go)
package dltprivacy_test

import (
	"errors"
	"fmt"
	"math/big"
	"strconv"
	"testing"

	"dltprivacy/internal/contract"
	"dltprivacy/internal/dcrypto"
	"dltprivacy/internal/guide"
	"dltprivacy/internal/ledger"
	"dltprivacy/internal/loc"
	"dltprivacy/internal/merkle"
	"dltprivacy/internal/mpc"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/paillier"
	"dltprivacy/internal/platform/fabric"
	"dltprivacy/internal/tee"
	"dltprivacy/internal/zkp"
)

// --- E1 / E2 ---

func BenchmarkTable1Probes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := guide.GenerateTable1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1Decide(b *testing.B) {
	reqs := guide.EnumerateRequirements()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reqs {
			_ = guide.Decide(r)
		}
	}
}

// --- E3 ---

func BenchmarkLoCLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app, err := loc.NewApp(loc.Config{Bank: "B", Buyer: "Y", Seller: "S"})
		if err != nil {
			b.Fatal(err)
		}
		balance := big.NewInt(10_000)
		comm, blinding, err := zkp.CommitValue(balance)
		if err != nil {
			b.Fatal(err)
		}
		id, err := app.Apply("goods", 5_000, []byte("pii"), balance, comm, blinding)
		if err != nil {
			b.Fatal(err)
		}
		for _, fn := range []func() error{
			func() error { return app.Issue(id) },
			func() error { return app.Ship(id, "BL") },
			func() error { return app.Present(id) },
			func() error { return app.Pay(id) },
		} {
			if err := fn(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- channel scaling (separation of ledgers ablation) ---

func kvChaincode() contract.Contract {
	return contract.Contract{
		Name:    "kv",
		Version: "1",
		Funcs: map[string]contract.Func{
			"put": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				if len(args) != 2 {
					return nil, errors.New("put: want key, value")
				}
				ctx.Put(string(args[0]), args[1])
				return nil, nil
			},
		},
	}
}

func newBenchFabric(b *testing.B, channels int) *fabric.Network {
	b.Helper()
	n, err := fabric.NewNetwork(fabric.Config{})
	if err != nil {
		b.Fatal(err)
	}
	for _, org := range []string{"OrgA", "OrgB"} {
		if _, err := n.AddOrg(org); err != nil {
			b.Fatal(err)
		}
	}
	policy := contract.Policy{Members: []string{"OrgA", "OrgB"}, Threshold: 1}
	for c := 0; c < channels; c++ {
		name := "ch" + strconv.Itoa(c)
		if err := n.CreateChannel(name, []string{"OrgA", "OrgB"}, policy); err != nil {
			b.Fatal(err)
		}
		if err := n.InstallChaincode(name, kvChaincode(), []string{"OrgA"}); err != nil {
			b.Fatal(err)
		}
	}
	return n
}

func BenchmarkChannelScaling(b *testing.B) {
	for _, channels := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("channels-%d", channels), func(b *testing.B) {
			n := newBenchFabric(b, channels)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch := "ch" + strconv.Itoa(i%channels)
				key := []byte("k" + strconv.Itoa(i))
				if _, err := n.Invoke(ch, "OrgA", "kv", "put",
					[][]byte{key, []byte("v")}, []string{"OrgA"}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- PDC vs symmetric encryption (private-data ablation) ---

func BenchmarkPrivateData(b *testing.B) {
	payload := []byte("confidential pricing data for the trade")

	b.Run("pdc-offchain-hash", func(b *testing.B) {
		n := newBenchFabric(b, 1)
		if err := n.CreateCollection("ch0", "pdc", []string{"OrgA", "OrgB"}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key := "k" + strconv.Itoa(i)
			if _, err := n.PutPrivate("ch0", "pdc", "OrgA", key, payload); err != nil {
				b.Fatal(err)
			}
			if _, err := n.GetPrivate("ch0", "pdc", "OrgB", key); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("onchain-symmetric", func(b *testing.B) {
		n := newBenchFabric(b, 1)
		key, err := dcrypto.NewSymmetricKey()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := []byte("k" + strconv.Itoa(i))
			ct, err := dcrypto.EncryptSymmetric(key, payload, k)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := n.Invoke("ch0", "OrgA", "kv", "put",
				[][]byte{k, ct}, []string{"OrgA"}); err != nil {
				b.Fatal(err)
			}
			stored, err := n.Query("ch0", "OrgB", string(k))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := dcrypto.DecryptSymmetric(key, stored, k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- tear-off scaling ---

func BenchmarkTearOff(b *testing.B) {
	for _, leaves := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("leaves-%d", leaves), func(b *testing.B) {
			data := make([][]byte, leaves)
			for i := range data {
				data[i] = []byte("component-" + strconv.Itoa(i))
			}
			tree, err := merkle.New(data)
			if err != nil {
				b.Fatal(err)
			}
			root := tree.Root()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				to, err := tree.TearOffVisible([]int{i % leaves})
				if err != nil {
					b.Fatal(err)
				}
				if err := to.Verify(root); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("full-disclosure-baseline", func(b *testing.B) {
		data := make([][]byte, 64)
		for i := range data {
			data[i] = []byte("component-" + strconv.Itoa(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree, err := merkle.New(data)
			if err != nil {
				b.Fatal(err)
			}
			_ = tree.Root()
		}
	})
}

// --- ZKP boolean affirmation ---

func BenchmarkRangeProof(b *testing.B) {
	balance := big.NewInt(5_000_000)
	threshold := big.NewInt(1_000_000)
	comm, blinding, err := zkp.CommitValue(balance)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("prove", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := zkp.ProveSufficientFunds(balance, blinding, threshold, comm, []byte("ctx")); err != nil {
				b.Fatal(err)
			}
		}
	})
	proof, err := zkp.ProveSufficientFunds(balance, blinding, threshold, comm, []byte("ctx"))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("verify", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := zkp.VerifySufficientFunds(proof, comm, []byte("ctx")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("raw-disclosure-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if balance.Cmp(threshold) < 0 {
				b.Fatal("unexpected")
			}
		}
	})
}

// --- MPC party scaling ---

func BenchmarkMPCSum(b *testing.B) {
	for _, parties := range []int{3, 5, 9, 17} {
		b.Run(fmt.Sprintf("parties-%d", parties), func(b *testing.B) {
			inputs := make(map[string]*big.Int, parties)
			for i := 0; i < parties; i++ {
				inputs["party-"+strconv.Itoa(i)] = big.NewInt(int64(i * 7))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mpc.SecureSum(inputs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("trusted-aggregator-baseline", func(b *testing.B) {
		inputs := make([]*big.Int, 9)
		for i := range inputs {
			inputs[i] = big.NewInt(int64(i * 7))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sum := new(big.Int)
			for _, v := range inputs {
				sum.Add(sum, v)
			}
		}
	})
}

// --- Paillier (homomorphic infeasibility quantification) ---

func BenchmarkPaillier(b *testing.B) {
	sk, err := paillier.GenerateKey(2048)
	if err != nil {
		b.Fatal(err)
	}
	m := big.NewInt(123456)
	ct, err := sk.Encrypt(m)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sk.Encrypt(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sk.Add(ct, ct); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scalar-mul", func(b *testing.B) {
		k := big.NewInt(42)
		for i := 0; i < b.N; i++ {
			if _, err := sk.MulScalar(ct, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decrypt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sk.Decrypt(ct); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plaintext-add-baseline", func(b *testing.B) {
		x := big.NewInt(123456)
		for i := 0; i < b.N; i++ {
			_ = new(big.Int).Add(x, x)
		}
	})
}

// --- TEE overhead ---

func benchContract() contract.Contract {
	return contract.Contract{
		Name:    "adder",
		Version: "1",
		Funcs: map[string]contract.Func{
			"add": func(ctx *contract.Context, args [][]byte) ([]byte, error) {
				a, _ := strconv.Atoi(string(args[0]))
				c, _ := strconv.Atoi(string(args[1]))
				return []byte(strconv.Itoa(a + c)), nil
			},
		},
	}
}

func BenchmarkTEE(b *testing.B) {
	args := [][]byte{[]byte("20"), []byte("22")}
	b.Run("plain-execution", func(b *testing.B) {
		c := benchContract()
		for i := 0; i < b.N; i++ {
			ctx := contract.NewContext("ch", "org", nil)
			if _, _, err := c.Invoke(ctx, "add", args); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enclave-execution", func(b *testing.B) {
		m, err := tee.NewManufacturer()
		if err != nil {
			b.Fatal(err)
		}
		enclave, err := m.Provision()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := contract.WrapInEnclave(enclave, benchContract()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := contract.InvokeInEnclave(enclave, "add", args, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- anonymous credentials ---

func BenchmarkAnonCred(b *testing.B) {
	attrs := []string{"role=member"}
	issuer := anoncredIssuer(b, attrs)
	key, err := issuer.AttributeKey(attrs)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("issue-token", func(b *testing.B) {
		w := anoncredWallet(b)
		for i := 0; i < b.N; i++ {
			if err := w.RequestTokens(issuer, attrs, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("present-and-verify", func(b *testing.B) {
		w := anoncredWallet(b)
		if err := w.RequestTokens(issuer, attrs, b.N+1); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := w.Present(attrs, "bench")
			if err != nil {
				b.Fatal(err)
			}
			if err := verifyPresentation(p, key); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- ordering throughput vs batch size ---

func BenchmarkOrdering(b *testing.B) {
	for _, batch := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("batch-%d", batch), func(b *testing.B) {
			l := ledger.New("ch")
			svc := ordering.New("op", ordering.VisibilityEnvelope, ordering.WithBatchSize(batch))
			svc.Subscribe("ch", l.Append)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := ledger.Transaction{
					Channel: "ch", Creator: "org",
					Writes: []ledger.Write{{Key: "k" + strconv.Itoa(i), Value: []byte("v")}},
				}
				if err := svc.Submit(tx); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = svc.Flush("ch")
		})
	}
}

// --- symmetric encryption payload scaling ---

func BenchmarkSymmetric(b *testing.B) {
	key, err := dcrypto.NewSymmetricKey()
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("bytes-%d", size), func(b *testing.B) {
			payload := make([]byte, size)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ct, err := dcrypto.EncryptSymmetric(key, payload, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dcrypto.DecryptSymmetric(key, ct, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
