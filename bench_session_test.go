package dltprivacy_test

import (
	"context"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
)

// BenchmarkGatewaySession compares the per-request security path against
// the session-amortized one on an otherwise identical pipeline:
//
//   - per-request: every submission pays full certificate verification
//     (authn) and a fresh per-member hybrid key-wrap (encrypt).
//   - session: certificate verification is paid once at session open; each
//     submission verifies one signature against the cached principal, and
//     the channel data key is wrapped once per epoch and reused.
//
// The middle variant isolates the two contributions by amortizing authn
// while still paying the per-request wrap.
func BenchmarkGatewaySession(b *testing.B) {
	env := newGatewayBenchEnv(b)
	cases := []struct {
		name    string
		stages  []middleware.StageConfig
		session bool
	}{
		{
			name: "per-request(authn+wrap)",
			stages: []middleware.StageConfig{
				{Name: middleware.StageAuthn},
				{Name: middleware.StageEncrypt},
			},
		},
		{
			name: "session(amortized-authn)",
			stages: []middleware.StageConfig{
				{Name: middleware.StageSession, Params: map[string]string{"ttl": "1h", "idle": "1h"}},
				{Name: middleware.StageEncrypt},
			},
			session: true,
		},
		{
			name: "session(amortized-authn+keycache)",
			stages: []middleware.StageConfig{
				{Name: middleware.StageSession, Params: map[string]string{"ttl": "1h", "idle": "1h"}},
				{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "1h"}},
			},
			session: true,
		},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			benchGatewaySession(b, env, tc.stages, tc.session)
		})
	}
}

func benchGatewaySession(b *testing.B, env *gatewayBenchEnv, stages []middleware.StageConfig, withSession bool) {
	b.Helper()
	orderer := ordering.New("bench-orderer", ordering.VisibilityEnvelope)
	sink := &nullBackend{}
	gwEnv := middleware.Env{
		CAKey:     env.ca.PublicKey(),
		Directory: middleware.StaticDirectory{"deals": env.memberKeys},
		Log:       audit.NewLog(),
		Sleep:     func(time.Duration) {},
	}
	gw, err := middleware.NewGateway("bench-gw", middleware.Config{Stages: stages}, gwEnv, orderer)
	if err != nil {
		b.Fatal(err)
	}
	gw.Bind("deals", sink)

	// One handshake per member, outside the timed loop: the cost being
	// amortized is paid here.
	tokens := make(map[string]string)
	if withSession {
		mgr := gw.Sessions()
		for member, key := range env.keys {
			hello, err := middleware.NewSessionHello(member, env.certs[member], key)
			if err != nil {
				b.Fatal(err)
			}
			grant, err := mgr.Open(hello)
			if err != nil {
				b.Fatal(err)
			}
			tokens[member] = grant.Token
		}
	}

	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := env.templates[i%len(env.templates)]
		if withSession {
			// Token instead of certificate: the session path never
			// touches the cert.
			req.SessionToken = tokens[req.Principal]
			req.Cert = pki.Certificate{}
		}
		if err := gw.Submit(ctx, &req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if stats := gw.Stats(); stats.Ordered != uint64(b.N) || sink.txs != b.N {
		b.Fatalf("ordered %d, backend committed %d, want %d", stats.Ordered, sink.txs, b.N)
	}
}
