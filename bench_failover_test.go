package dltprivacy_test

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dltprivacy/internal/ledger"
	"dltprivacy/internal/ordering"
)

// BenchmarkShardFailover measures the availability cost of losing a shard
// leader on a 16-shard replicated topology: every iteration crashes the
// current leader of one shard's channel, submits (the submission triggers
// the election, replay, and retry inside the shard), and restarts the dead
// operator. ns/op is therefore an upper bound on how long one shard's
// channels are unavailable after a leader death — the CI benchmark gate
// holds it under one second, the §3.4 availability dip the replicated
// fabric promises. Other shards' channels never stop serving (the chaos
// suite asserts that isolation).
func BenchmarkShardFailover(b *testing.B) {
	b.Run("shards=16", func(b *testing.B) { benchShardFailover(b, 16) })
}

func benchShardFailover(b *testing.B, nShards int) {
	b.Helper()
	shards := make([]ordering.Backend, nShards)
	replicated := make([]*ordering.ReplicatedShard, nShards)
	for i := range shards {
		ops := []string{
			fmt.Sprintf("fo-op-%d-0", i),
			fmt.Sprintf("fo-op-%d-1", i),
			fmt.Sprintf("fo-op-%d-2", i),
		}
		rs, err := ordering.NewReplicatedShard(ops, ordering.VisibilityEnvelope)
		if err != nil {
			b.Fatal(err)
		}
		shards[i] = rs
		replicated[i] = rs
	}
	sb, err := ordering.NewSharded(shards)
	if err != nil {
		b.Fatal(err)
	}
	var delivered atomic.Uint64
	channels := make([]string, nShards)
	for i := range channels {
		channels[i] = fmt.Sprintf("fo-ch-%02d", i)
		if err := sb.Pin(channels[i], i); err != nil {
			b.Fatal(err)
		}
		sb.Subscribe(channels[i], func(blk ledger.Block) error {
			delivered.Add(uint64(len(blk.Txs)))
			return nil
		})
	}
	mkTx := func(ch string, n int) ledger.Transaction {
		return ledger.Transaction{
			Channel:   ch,
			Creator:   "bench",
			Payload:   []byte("failover"),
			Writes:    []ledger.Write{{Key: fmt.Sprintf("k-%d", n), Value: []byte("v")}},
			Timestamp: time.Unix(1700000000, 0).UTC(),
		}
	}
	// Prime every channel so each cluster has a leader and a committed log
	// before the first kill.
	for i, ch := range channels {
		if err := sb.Submit(mkTx(ch, -i-1)); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shard := i % nShards
		ch := channels[shard]
		rs := replicated[shard]
		dead, err := rs.CrashLeader(ch)
		if err != nil {
			b.Fatal(err)
		}
		// The submission lands leaderless and rides the automatic election.
		if err := sb.Submit(mkTx(ch, i)); err != nil {
			b.Fatal(err)
		}
		c, err := rs.Cluster(ch)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Restart(dead); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if got, want := delivered.Load(), uint64(b.N+nShards); got != want {
		b.Fatalf("delivered %d txs, want %d", got, want)
	}
}
