package dltprivacy_test

import (
	"context"
	"testing"
	"time"

	"dltprivacy/internal/audit"
	"dltprivacy/internal/middleware"
	"dltprivacy/internal/ordering"
	"dltprivacy/internal/pki"
)

// BenchmarkGatewayRevokeCheck prices the revocation plane on the session
// hot path. The pipeline is identical to BenchmarkGatewaySession's
// session(amortized-authn+keycache) case — the fastest configuration the
// gateway has — with a revocation plane wired in each checking mode:
//
//   - checks=off: the revoker is configured but never consulted on the
//     hot path (the pre-revocation-plane cost, for reference).
//   - checks=resolve: every token resolution probes the revoker's
//     version (one atomic load while nothing is revoked) — the mode the
//     ≲5%-overhead claim is about, held by the benchgate speedup rule
//     against the session baseline.
//   - checks=sweep: every resolution compares the sweep deadline instead
//     of touching the revoker.
//
// No certificate is revoked during the timed loop: the benchmark measures
// the steady-state cost of being able to notice a revocation, not the
// one-off cost of processing one.
func BenchmarkGatewayRevokeCheck(b *testing.B) {
	env := newGatewayBenchEnv(b)
	for _, mode := range []string{"off", "resolve", "sweep"} {
		b.Run("checks="+mode, func(b *testing.B) {
			benchGatewayRevokeCheck(b, env, mode)
		})
	}
}

func benchGatewayRevokeCheck(b *testing.B, env *gatewayBenchEnv, mode string) {
	b.Helper()
	params := map[string]string{"ttl": "1h", "idle": "1h", "revokecheck": mode}
	if mode == "sweep" {
		params["revokesweep"] = "1m"
	}
	cfg := middleware.Config{Stages: []middleware.StageConfig{
		{Name: middleware.StageSession, Params: params},
		{Name: middleware.StageEncrypt, Params: map[string]string{"keyttl": "1h"}},
	}}
	orderer := ordering.New("bench-orderer", ordering.VisibilityEnvelope)
	sink := &nullBackend{}
	gwEnv := middleware.Env{
		CAKey:     env.ca.PublicKey(),
		Directory: middleware.StaticDirectory{"deals": env.memberKeys},
		Log:       audit.NewLog(),
		Revoker:   env.ca,
		Sleep:     func(time.Duration) {},
	}
	gw, err := middleware.NewGateway("bench-gw", cfg, gwEnv, orderer)
	if err != nil {
		b.Fatal(err)
	}
	gw.Bind("deals", sink)

	tokens := make(map[string]string)
	mgr := gw.Sessions()
	for member, key := range env.keys {
		hello, err := middleware.NewSessionHello(member, env.certs[member], key)
		if err != nil {
			b.Fatal(err)
		}
		grant, err := mgr.Open(hello)
		if err != nil {
			b.Fatal(err)
		}
		tokens[member] = grant.Token
	}

	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := env.templates[i%len(env.templates)]
		req.SessionToken = tokens[req.Principal]
		req.Cert = pki.Certificate{}
		if err := gw.Submit(ctx, &req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if stats := gw.Stats(); stats.Ordered != uint64(b.N) || sink.txs != b.N {
		b.Fatalf("ordered %d, backend committed %d, want %d", stats.Ordered, sink.txs, b.N)
	}
}
